package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// This file implements GET /v1/jobs/{key}?watch=1: job status streamed
// over Server-Sent Events (queued → running → done with the cached body),
// so long sweeps are observable without polling. The hub fans lifecycle
// transitions out to watchers; drain shuts every stream down cleanly with
// a final "draining" status before the listener stops.

// watchEvent is one SSE frame: an event name plus a single-line JSON
// payload.
type watchEvent struct {
	name string
	data []byte
}

func statusEvent(state string) watchEvent {
	b, _ := json.Marshal(struct {
		State string `json:"state"`
	}{state})
	return watchEvent{"status", b}
}

// watchHub fans job lifecycle events out to the job's SSE watchers.
type watchHub struct {
	mu     sync.Mutex
	subs   map[string]map[chan watchEvent]struct{}
	closed bool
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[string]map[chan watchEvent]struct{})}
}

// subscribe registers a watcher for key; ch is nil when the hub has shut
// down (the server is draining). cancel is idempotent and safe to call
// after the hub closed the channel.
func (h *watchHub) subscribe(key string) (ch chan watchEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil
	}
	ch = make(chan watchEvent, 8)
	set := h.subs[key]
	if set == nil {
		set = make(map[chan watchEvent]struct{})
		h.subs[key] = set
	}
	set[ch] = struct{}{}
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if cur, ok := h.subs[key]; ok {
			delete(cur, ch)
			if len(cur) == 0 {
				delete(h.subs, key)
			}
		}
	}
}

// broadcast delivers ev to every watcher of key; sends never block the
// serving path (a stalled watcher's buffer drops intermediate events). A
// terminal event additionally closes every watcher's channel, ending the
// streams.
func (h *watchHub) broadcast(key string, ev watchEvent, terminal bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	set := h.subs[key]
	if set == nil {
		return
	}
	for ch := range set {
		select {
		case ch <- ev:
		default:
		}
	}
	if terminal {
		for ch := range set {
			close(ch)
		}
		delete(h.subs, key)
	}
}

// announce broadcasts a non-terminal status transition ("queued",
// "running").
func (h *watchHub) announce(key, state string) { h.broadcast(key, statusEvent(state), false) }

// complete broadcasts the finished job's body and ends its streams.
func (h *watchHub) complete(key string, body []byte) {
	h.broadcast(key, watchEvent{"done", body}, true)
}

// fail broadcasts a job failure and ends its streams.
func (h *watchHub) fail(key, msg string) {
	b, _ := json.Marshal(errorResponse{Error: msg})
	h.broadcast(key, watchEvent{"error", b}, true)
}

// shutdown sends every open stream a final "draining" status and closes
// it, then refuses new subscriptions; part of graceful drain, so the HTTP
// server's Shutdown is not held hostage by long-lived streams. Idempotent.
func (h *watchHub) shutdown() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	ev := statusEvent("draining")
	for key, set := range h.subs {
		for ch := range set {
			select {
			case ch <- ev:
			default:
			}
			close(ch)
		}
		delete(h.subs, key)
	}
}

// reopen accepts subscriptions again after a shutdown (readiness toggled
// back on).
func (h *watchHub) reopen() {
	h.mu.Lock()
	h.closed = false
	h.mu.Unlock()
}

func writeSSE(w io.Writer, ev watchEvent) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
}

// serveJobWatch streams a job's status over SSE. Subscribe-then-check
// ordering makes completion race-free: a job finishing around the
// subscription either already populated the cache (served as an immediate
// "done") or will be broadcast to the subscription channel.
func (s *Server) serveJobWatch(w http.ResponseWriter, r *http.Request, key string) int {
	fl, ok := w.(http.Flusher)
	if !ok {
		return writeError(w, http.StatusInternalServerError, errors.New("server: streaming unsupported"))
	}
	ch, cancel := s.watch.subscribe(key)
	if ch == nil {
		return writeError(w, http.StatusServiceUnavailable, ErrDraining)
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if body, ok := s.cache.Get(key); ok {
		writeSSE(w, watchEvent{"done", body})
		fl.Flush()
		return http.StatusOK
	}
	state := "unknown"
	s.flightMu.Lock()
	if _, inFlight := s.flights[key]; inFlight {
		state = "queued"
	}
	s.flightMu.Unlock()
	writeSSE(w, statusEvent(state))
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return http.StatusOK
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return http.StatusOK
		}
	}
}
