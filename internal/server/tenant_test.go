package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hsfq/internal/simconfig"
	"hsfq/internal/tenantsched"
)

// postTenant posts body with tenant identity headers (empty strings omit
// the header).
func postTenant(t *testing.T, ts *httptest.Server, path, tenant, key, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestTenantIdentity drives the identity matrix through real HTTP: the
// default tenant for header-less traffic, 400 for malformed names, 403
// for unknown tenants under a strict policy, 401 for a missing or wrong
// API key, and 200 with the right one.
func TestTenantIdentity(t *testing.T) {
	pol := &tenantsched.Policy{
		Strict: true,
		Tenants: map[string]tenantsched.TenantPolicy{
			"gold": {Weight: 4, Key: "sekrit"},
			"open": {Weight: 1},
		},
	}
	srv := New(Config{Workers: 1, QueueDepth: 4, Policy: pol})
	defer srv.Drain()
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		return fmt.Sprintf("digest-%d", seed), map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name, tenant, key string
		want              int
	}{
		{"headerless is default tenant", "", "", 200},
		{"known keyless tenant", "open", "", 200},
		{"right key", "gold", "sekrit", 200},
		{"missing key", "gold", "", 401},
		{"wrong key", "gold", "nope", 401},
		{"unknown under strict", "stranger", "", 403},
		{"malformed name", "-bad", "", 400},
	}
	for i, c := range cases {
		resp, body := postTenant(t, ts, "/v1/simulate", c.tenant, c.key, scenarioJSON(100+i))
		if resp.StatusCode != c.want {
			t.Errorf("%s: got %d want %d (%s)", c.name, resp.StatusCode, c.want, body)
		}
	}
}

// TestTenantMetrics: /metrics grows a tenants section with per-tenant
// scheduling counters, tags, and latency quantiles, plus the tree's
// global virtual time — all additive next to the pre-tenant schema.
func TestTenantMetrics(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8})
	defer srv.Drain()
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		return fmt.Sprintf("digest-%d", seed), map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for seed := 1; seed <= 3; seed++ {
		if resp, _ := postTenant(t, ts, "/v1/simulate", "acme", "", scenarioJSON(seed)); resp.StatusCode != 200 {
			t.Fatalf("acme seed %d: %d", seed, resp.StatusCode)
		}
	}
	if resp, _ := post(t, ts, "/v1/simulate", scenarioJSON(4)); resp.StatusCode != 200 {
		t.Fatalf("headerless: %d", resp.StatusCode)
	}

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics decode: %v\n%s", err, body)
	}
	acme, ok := m.Tenants["acme"]
	if !ok {
		t.Fatalf("no acme tenant in metrics: %s", body)
	}
	if acme.Submitted != 3 || acme.Completed != 3 || acme.Shed != 0 {
		t.Errorf("acme counters %+v", acme.TenantSnapshot)
	}
	if acme.Requests.Count != 3 || acme.Requests.LatencyMS.P99 < 0 {
		t.Errorf("acme latency %+v", acme.Requests)
	}
	def, ok := m.Tenants[tenantsched.DefaultTenant]
	if !ok || def.Submitted != 1 {
		t.Errorf("default tenant %+v ok=%v", def.TenantSnapshot, ok)
	}
	if m.VirtualTime <= 0 {
		t.Errorf("virtual time %v, want > 0 after served requests", m.VirtualTime)
	}
	// Finished tenants trail the advancing virtual time by a non-negative
	// lag.
	if acme.VirtualTimeLag < 0 {
		t.Errorf("acme virtual-time lag %v < 0", acme.VirtualTimeLag)
	}
	// Pre-tenant schema fields are still present and sane.
	if m.Workers != 2 || m.QueueCapacity != 8 || m.TasksDone != 4 {
		t.Errorf("legacy fields: workers=%d cap=%d done=%d", m.Workers, m.QueueCapacity, m.TasksDone)
	}
}

// TestPolicyHotSwap: SetPolicy must take effect on live traffic — a
// tenant admitted under the old policy is rejected once the new one
// requires a key, without restarting the server.
func TestPolicyHotSwap(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4})
	defer srv.Drain()
	srv.execute = func(cfg simconfig.Config, seed uint64) (string, map[string]float64, error) {
		return fmt.Sprintf("digest-%d", seed), map[string]float64{"x": 1}, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, _ := postTenant(t, ts, "/v1/simulate", "acme", "", scenarioJSON(1)); resp.StatusCode != 200 {
		t.Fatalf("open policy: %d", resp.StatusCode)
	}
	srv.SetPolicy(&tenantsched.Policy{Tenants: map[string]tenantsched.TenantPolicy{
		"acme": {Key: "sekrit"},
	}})
	if resp, _ := postTenant(t, ts, "/v1/simulate", "acme", "", scenarioJSON(2)); resp.StatusCode != 401 {
		t.Errorf("after swap without key: %d, want 401", resp.StatusCode)
	}
	if resp, _ := postTenant(t, ts, "/v1/simulate", "acme", "sekrit", scenarioJSON(3)); resp.StatusCode != 200 {
		t.Errorf("after swap with key: %d, want 200", resp.StatusCode)
	}
}
