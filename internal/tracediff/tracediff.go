// Package tracediff localizes the first divergent scheduling event
// between two simulation runs — the checkpoint-grid bisection behind
// cmd/hsfqdiff, shared with hsfqd's POST /v1/diff endpoint.
//
// Replaying two full traces to find one differing row is wasteful, so
// the diff bisects with checkpoints: each run executes once while a
// streaming hasher folds every event into a SHA-256 and an in-memory
// checkpoint of the full simulator state is captured at `grid` evenly
// spaced instants, each paired with the digest of the stream so far.
// The last instant where both prefixes agree bounds the divergence; only
// that final grid cell is replayed — restored from each run's own
// checkpoint — with full event recording to pinpoint the first
// mismatching row. Event storage is O(horizon/grid), not O(horizon).
package tracediff

import (
	"fmt"

	"hsfq/internal/checkpoint"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

// Result statuses.
const (
	StatusIdentical = "identical"
	StatusDivergent = "divergent"
)

// Input is one side of a diff: a parsed config plus its seed override.
type Input struct {
	Label  string
	Config simconfig.Config
	Seed   uint64
}

// FirstRows is the first pair of canonical event rows that disagree;
// "<end of stream>" marks the shorter side running out of events.
type FirstRows struct {
	A string `json:"a"`
	B string `json:"b"`
}

// Result is the outcome of a diff. Its JSON encoding is the schema of
// both `hsfqdiff -json` and hsfqd's POST /v1/diff response.
type Result struct {
	// Status is "identical" or "divergent".
	Status string `json:"status"`
	// Rows and Digest describe the complete stream when identical, and
	// side A's stream when divergent.
	Rows   int    `json:"rows"`
	Digest string `json:"digest"`
	// DivergenceAtNs is the simulated time of the first divergent event.
	DivergenceAtNs int64 `json:"divergence_at_ns,omitempty"`
	// FirstRows holds the first disagreeing row pair.
	FirstRows *FirstRows `json:"first_rows,omitempty"`
	// ReplayFromInstant / Grid / ReplayFromNs locate the replayed grid
	// cell; EventsA / EventsB count the events recorded in that window.
	ReplayFromInstant int   `json:"replay_from_instant,omitempty"`
	Grid              int   `json:"grid,omitempty"`
	ReplayFromNs      int64 `json:"replay_from_ns,omitempty"`
	EventsA           int   `json:"events_a,omitempty"`
	EventsB           int   `json:"events_b,omitempty"`
}

// Divergent reports whether the runs parted ways.
func (r *Result) Divergent() bool { return r.Status == StatusDivergent }

// side is one probed run: its buildable inputs plus the artifacts of the
// probe pass — grid checkpoints with prefix digests, and the digest of
// the complete stream.
type side struct {
	in       Input
	horizon  sim.Time
	numCores int

	ckpt    [][]byte // ckpt[i] = state at horizon*i/grid; [0] unused (rebuild)
	digest  []string // digest[i] = stream digest at that instant
	rows    []int    // rows[i] = events hashed by that instant
	final   string
	finalRN int
}

// Diff probes both runs and, if they differ, bisects and replays the
// last agreeing grid cell to pinpoint the first divergent event. warn
// receives non-fatal probe diagnostics (failed checkpoint encodes); nil
// discards them.
func Diff(a, b Input, grid int, warn func(format string, args ...any)) (*Result, error) {
	if grid < 1 {
		return nil, fmt.Errorf("grid must be at least 1")
	}
	if warn == nil {
		warn = func(string, ...any) {}
	}
	sa, err := probe(a, grid, warn)
	if err != nil {
		return nil, err
	}
	sb, err := probe(b, grid, warn)
	if err != nil {
		return nil, err
	}
	if sa.horizon != sb.horizon {
		return nil, fmt.Errorf("horizons differ (%v vs %v); divergence search needs a common horizon", sa.horizon, sb.horizon)
	}

	if sa.final == sb.final && sa.finalRN == sb.finalRN {
		return &Result{Status: StatusIdentical, Rows: sa.finalRN, Digest: sa.final}, nil
	}

	// Bisect: the last grid instant where both prefixes agree. Index 0
	// (the empty prefix) always agrees.
	from := 0
	for i := grid - 1; i > 0; i-- {
		if sa.ckpt[i] != nil && sb.ckpt[i] != nil && sa.digest[i] == sb.digest[i] && sa.rows[i] == sb.rows[i] {
			from = i
			break
		}
	}

	evA, err := sa.replay(from)
	if err != nil {
		return nil, err
	}
	evB, err := sb.replay(from)
	if err != nil {
		return nil, err
	}
	numCores := sa.numCores
	if sb.numCores > numCores {
		numCores = sb.numCores
	}
	at, rowA, rowB, found := firstDivergence(evA, evB, numCores)
	if !found {
		return nil, fmt.Errorf("streams differ in digest but replays from instant %d/%d agree; checkpoint state is inconsistent", from, grid)
	}
	return &Result{
		Status:            StatusDivergent,
		Rows:              sa.finalRN,
		Digest:            sa.final,
		DivergenceAtNs:    int64(at),
		FirstRows:         &FirstRows{A: rowA, B: rowB},
		ReplayFromInstant: from,
		Grid:              grid,
		ReplayFromNs:      int64(sa.horizon * sim.Time(from) / sim.Time(grid)),
		EventsA:           len(evA),
		EventsB:           len(evB),
	}, nil
}

// probe executes one run start to finish, folding every event into a
// streaming hash and snapshotting state + prefix digest at each grid
// instant. Checkpoints that fail to encode leave a nil slot: the
// bisection then falls back to an earlier instant.
func probe(in Input, grid int, warn func(format string, args ...any)) (*side, error) {
	s, err := simconfig.Build(in.Config, simconfig.BuildOptions{Seed: in.Seed})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", in.Label, err)
	}

	sd := &side{
		in:      in,
		horizon: s.Config.Horizon.Time(),
		ckpt:    make([][]byte, grid),
		digest:  make([]string, grid),
		rows:    make([]int, grid),
	}
	h := trace.NewHasher()
	s.Machine.Listen(h)
	sd.numCores = s.Machine.NumCores()
	for i := 1; i < grid; i++ {
		at := sd.horizon * sim.Time(i) / sim.Time(grid)
		if at <= 0 {
			continue
		}
		i := i
		s.Engine.At(at, func() {
			if data, err := checkpoint.Save(s, checkpoint.Options{}); err == nil {
				sd.ckpt[i] = data
			} else {
				warn("%s: checkpoint at %v: %v", in.Label, at, err)
			}
			sd.digest[i] = h.Sum()
			sd.rows[i] = h.Rows()
		})
	}
	s.Run()
	sd.final = h.Sum()
	sd.finalRN = h.Rows()
	return sd, nil
}

// replay re-executes the run from grid instant `from` to the horizon with
// full event recording. Instant 0 rebuilds from the config; later
// instants restore the probe's checkpoint, which resume equivalence
// guarantees continues byte-identically to the original run.
func (sd *side) replay(from int) ([]trace.Event, error) {
	var s *simconfig.Simulation
	var err error
	if from == 0 {
		s, err = simconfig.Build(sd.in.Config, simconfig.BuildOptions{Seed: sd.in.Seed})
	} else {
		s, err = checkpoint.Restore(sd.ckpt[from], checkpoint.Options{})
	}
	if err != nil {
		return nil, fmt.Errorf("%s: replay from instant %d: %w", sd.in.Label, from, err)
	}
	rec := trace.NewRecorder(0)
	s.Machine.Listen(rec)
	s.Run()
	return rec.Events(), nil
}

// firstDivergence scans two replayed windows for the first event where
// they disagree, comparing the same canonical row text the hasher folds.
func firstDivergence(a, b []trace.Event, numCores int) (at sim.Time, rowA, rowB string, found bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ra, rb := trace.RowText(a[i], numCores), trace.RowText(b[i], numCores)
		if ra != rb {
			at = a[i].At
			if b[i].At < at {
				at = b[i].At
			}
			return at, ra, rb, true
		}
	}
	switch {
	case len(a) > n:
		return a[n].At, trace.RowText(a[n], numCores), "<end of stream>", true
	case len(b) > n:
		return b[n].At, "<end of stream>", trace.RowText(b[n], numCores), true
	}
	return 0, "", "", false
}
