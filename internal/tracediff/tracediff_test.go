package tracediff

import (
	"encoding/json"
	"strings"
	"testing"

	"hsfq/internal/simconfig"
)

const baseConfig = `{
  "horizon": "2s",
  "seed": 5,
  "nodes": [
    {"path": "/rt", "weight": 3, "leaf": "edf", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "sfq", "quantum": "10ms"}
  ],
  "threads": [
    {"name": "cam", "leaf": "/rt", "program": {"kind": "periodic", "period": "33ms", "cost": "5ms"}},
    {"name": "job", "leaf": "/be", "program": {"kind": "loop"}}
  ],
  "interrupts": [{"kind": "poisson", "rate_per_sec": 120, "service": "100us"}]
}`

func input(t *testing.T, label, body string, seed uint64) Input {
	t.Helper()
	cfg, err := simconfig.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return Input{Label: label, Config: cfg, Seed: seed}
}

func TestDiffIdenticalResult(t *testing.T) {
	res, err := Diff(input(t, "a", baseConfig, 0), input(t, "b", baseConfig, 0), 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergent() || res.Status != StatusIdentical {
		t.Fatalf("identical configs: %+v", res)
	}
	if res.Rows == 0 || res.Digest == "" {
		t.Fatalf("missing stream summary: %+v", res)
	}
	if res.DivergenceAtNs != 0 || res.FirstRows != nil {
		t.Fatalf("identical result carries divergence fields: %+v", res)
	}
}

func TestDiffPlantedDivergence(t *testing.T) {
	late := strings.Replace(baseConfig, `"program": {"kind": "loop"}}`,
		`"program": {"kind": "loop"}},
    {"name": "intruder", "leaf": "/be", "start": "1s", "program": {"kind": "loop"}}`, 1)
	res, err := Diff(input(t, "a", baseConfig, 0), input(t, "b", late, 0), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Divergent() {
		t.Fatal("planted divergence not detected")
	}
	if res.DivergenceAtNs < 900e6 || res.DivergenceAtNs > 1100e6 {
		t.Fatalf("divergence at %dns, want ~1s", res.DivergenceAtNs)
	}
	if res.FirstRows == nil || res.FirstRows.A == res.FirstRows.B {
		t.Fatalf("first rows: %+v", res.FirstRows)
	}
	if res.ReplayFromInstant == 0 {
		t.Fatalf("bisector replayed from tick zero: %+v", res)
	}

	// The JSON encoding is the /v1/diff schema: spot-check key names.
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"status":"divergent"`, `"divergence_at_ns":`, `"first_rows":`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing %s: %s", key, b)
		}
	}
}

func TestDiffErrors(t *testing.T) {
	a := input(t, "a", baseConfig, 0)
	short := input(t, "b", strings.Replace(baseConfig, `"horizon": "2s"`, `"horizon": "1s"`, 1), 0)
	if _, err := Diff(a, short, 8, nil); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("horizon mismatch: %v", err)
	}
	if _, err := Diff(a, a, 0, nil); err == nil {
		t.Error("zero grid accepted")
	}
	bad := Input{Label: "b", Config: simconfig.Config{}}
	if _, err := Diff(a, bad, 8, nil); err == nil {
		t.Error("empty config accepted")
	}
}
