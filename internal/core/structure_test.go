package core

import (
	"errors"
	"strings"
	"testing"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func q() *sched.SFQ { return sched.NewSFQ(10 * sim.Millisecond) }

// buildPaperFig2 constructs the example structure of the paper's Fig. 2:
// root -> {hard-real-time (1), soft-real-time (3), best-effort (6)},
// best-effort -> {user1 (1), user2 (1)}.
func buildPaperFig2(t *testing.T) (*Structure, map[string]NodeID) {
	t.Helper()
	s := NewStructure()
	ids := map[string]NodeID{}
	mk := func(name string, parent NodeID, w float64, leaf sched.Scheduler) NodeID {
		id, err := s.Mknod(name, parent, w, leaf)
		if err != nil {
			t.Fatalf("mknod %s: %v", name, err)
		}
		ids[name] = id
		return id
	}
	mk("hard-real-time", RootID, 1, sched.NewEDF(0))
	mk("soft-real-time", RootID, 3, q())
	be := mk("best-effort", RootID, 6, nil)
	mk("user1", be, 1, q())
	mk("user2", be, 1, sched.NewSVR4(nil, 100_000_000, 0))
	return s, ids
}

func TestMknodAndPaths(t *testing.T) {
	s, ids := buildPaperFig2(t)
	if got := s.PathOf(ids["user1"]); got != "/best-effort/user1" {
		t.Errorf("PathOf = %q", got)
	}
	if got := s.PathOf(RootID); got != "/" {
		t.Errorf("root path %q", got)
	}
	if got := s.PathOf(999); !strings.Contains(got, "bad node") {
		t.Errorf("bad id path %q", got)
	}
	n := s.Node(ids["best-effort"])
	if n.IsLeaf() || len(n.Children()) != 2 {
		t.Error("best-effort node shape wrong")
	}
	if s.Node(ids["user1"]).Leaf() == nil {
		t.Error("user1 leaf scheduler missing")
	}
}

func TestMknodErrors(t *testing.T) {
	s, ids := buildPaperFig2(t)
	cases := []struct {
		name   string
		parent NodeID
		weight float64
		err    error
	}{
		{"x", 999, 1, ErrNoNode},
		{"x", ids["user1"], 1, ErrIsLeaf},
		{"x", RootID, 0, ErrBadWeight},
		{"x", RootID, -2, ErrBadWeight},
		{"", RootID, 1, ErrBadName},
		{"a/b", RootID, 1, ErrBadName},
		{".", RootID, 1, ErrBadName},
		{"..", RootID, 1, ErrBadName},
		{"best-effort", RootID, 1, ErrDupName},
	}
	for _, c := range cases {
		if _, err := s.Mknod(c.name, c.parent, c.weight, nil); !errors.Is(err, c.err) {
			t.Errorf("Mknod(%q, %d, %v) err = %v, want %v", c.name, c.parent, c.weight, err, c.err)
		}
	}
}

func TestParse(t *testing.T) {
	s, ids := buildPaperFig2(t)
	cases := []struct {
		name string
		hint NodeID
		want NodeID
	}{
		{"/best-effort/user1", 0, ids["user1"]},
		{"/", 0, RootID},
		{"user2", ids["best-effort"], ids["user2"]},
		{"./user1", ids["best-effort"], ids["user1"]},
		{"../soft-real-time", ids["best-effort"], ids["soft-real-time"]},
		{"..", RootID, RootID}, // ".." at root stays at root
		{"/best-effort/./user2", 0, ids["user2"]},
	}
	for _, c := range cases {
		got, err := s.Parse(c.name, c.hint)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q, %d) = %d, %v; want %d", c.name, c.hint, got, err, c.want)
		}
	}
	if _, err := s.Parse("/no/such", 0); !errors.Is(err, ErrNoNode) {
		t.Errorf("missing path err %v", err)
	}
	if _, err := s.Parse("x", 999); !errors.Is(err, ErrNoNode) {
		t.Errorf("bad hint err %v", err)
	}
}

func TestMknodPath(t *testing.T) {
	s := NewStructure()
	id, err := s.MknodPath("/a/b/c", 4, q())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PathOf(id); got != "/a/b/c" {
		t.Errorf("path %q", got)
	}
	if w, _ := s.NodeWeightOf(id); w != 4 {
		t.Errorf("weight %v", w)
	}
	// Intermediates got weight 1 and are not leaves.
	aid, err := s.Parse("/a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := s.NodeWeightOf(aid); w != 1 {
		t.Errorf("intermediate weight %v", w)
	}
	// Reusing the prefix works.
	if _, err := s.MknodPath("/a/b/d", 2, q()); err != nil {
		t.Fatal(err)
	}
	// Relative paths rejected.
	if _, err := s.MknodPath("x/y", 1, nil); !errors.Is(err, ErrBadName) {
		t.Errorf("relative path err %v", err)
	}
	if _, err := s.MknodPath("/", 1, nil); !errors.Is(err, ErrBadName) {
		t.Errorf("root path err %v", err)
	}
}

func TestRmnod(t *testing.T) {
	s, ids := buildPaperFig2(t)
	// Busy intermediate refuses.
	if err := s.Rmnod(ids["best-effort"]); !errors.Is(err, ErrHasChildren) {
		t.Errorf("rm of parent err %v", err)
	}
	// Leaf with threads refuses.
	th := sched.NewThread(1, "t", 1)
	if err := s.Attach(th, ids["user1"]); err != nil {
		t.Fatal(err)
	}
	if err := s.Rmnod(ids["user1"]); !errors.Is(err, ErrHasThreads) {
		t.Errorf("rm of occupied leaf err %v", err)
	}
	if err := s.Detach(th); err != nil {
		t.Fatal(err)
	}
	if err := s.Rmnod(ids["user1"]); err != nil {
		t.Errorf("rm of empty leaf: %v", err)
	}
	if _, err := s.Parse("/best-effort/user1", 0); err == nil {
		t.Error("removed node still resolvable")
	}
	// Root refuses; unknown refuses.
	if err := s.Rmnod(RootID); err == nil {
		t.Error("removed the root")
	}
	if err := s.Rmnod(999); !errors.Is(err, ErrNoNode) {
		t.Errorf("rm unknown err %v", err)
	}
	// Name can be reused after removal.
	if _, err := s.Mknod("user1", ids["best-effort"], 2, q()); err != nil {
		t.Errorf("reuse of removed name: %v", err)
	}
}

func TestAttachMoveDetach(t *testing.T) {
	s, ids := buildPaperFig2(t)
	th := sched.NewThread(1, "t", 1)
	if err := s.Attach(th, ids["best-effort"]); !errors.Is(err, ErrNotLeaf) {
		t.Errorf("attach to non-leaf err %v", err)
	}
	if err := s.Attach(th, 999); !errors.Is(err, ErrNoNode) {
		t.Errorf("attach to unknown err %v", err)
	}
	if err := s.Attach(th, ids["user1"]); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(th, ids["user2"]); err == nil {
		t.Error("double attach allowed")
	}
	if got := s.LeafOf(th); got.ID() != ids["user1"] {
		t.Errorf("LeafOf = %v", got.ID())
	}

	// Move while blocked works; while runnable refuses.
	if err := s.Move(th, ids["user2"]); err != nil {
		t.Fatal(err)
	}
	if got := s.LeafOf(th); got.ID() != ids["user2"] {
		t.Errorf("LeafOf after move = %v", got.ID())
	}
	s.Enqueue(th, 0)
	th.State = sched.StateRunnable
	if err := s.Move(th, ids["user1"]); !errors.Is(err, ErrThreadRunning) {
		t.Errorf("move of runnable err %v", err)
	}
	if err := s.Detach(th); !errors.Is(err, ErrThreadRunning) {
		t.Errorf("detach of runnable err %v", err)
	}
	s.Remove(th, 0)
	th.State = sched.StateBlocked
	if err := s.Move(th, ids["user1"]); err != nil {
		t.Errorf("move after block: %v", err)
	}
	if err := s.Move(th, ids["best-effort"]); !errors.Is(err, ErrNotLeaf) {
		t.Errorf("move to non-leaf err %v", err)
	}
	if err := s.Detach(th); err != nil {
		t.Errorf("detach: %v", err)
	}
	other := sched.NewThread(2, "o", 1)
	if err := s.Move(other, ids["user1"]); !errors.Is(err, ErrNoThread) {
		t.Errorf("move of unattached err %v", err)
	}
}

func TestAdminOps(t *testing.T) {
	s, ids := buildPaperFig2(t)
	if err := s.SetNodeWeight(ids["soft-real-time"], 5); err != nil {
		t.Fatal(err)
	}
	if w, _ := s.NodeWeightOf(ids["soft-real-time"]); w != 5 {
		t.Errorf("weight %v", w)
	}
	if err := s.SetNodeWeight(RootID, 2); err == nil {
		t.Error("set weight of root allowed")
	}
	if err := s.SetNodeWeight(ids["user1"], 0); !errors.Is(err, ErrBadWeight) {
		t.Errorf("zero weight err %v", err)
	}
	if err := s.SetNodeWeight(999, 1); !errors.Is(err, ErrNoNode) {
		t.Errorf("unknown node err %v", err)
	}
	if _, err := s.NodeWeightOf(999); !errors.Is(err, ErrNoNode) {
		t.Errorf("weight of unknown err %v", err)
	}
}

func TestBandwidth(t *testing.T) {
	s, ids := buildPaperFig2(t)
	// Fig. 2: best-effort gets 6/10 of the root; user1 half of that.
	if bw, _ := s.Bandwidth(ids["best-effort"]); !near(bw, 0.6) {
		t.Errorf("best-effort bandwidth %v", bw)
	}
	if bw, _ := s.Bandwidth(ids["user1"]); !near(bw, 0.3) {
		t.Errorf("user1 bandwidth %v", bw)
	}
	if bw, _ := s.Bandwidth(RootID); bw != 1 {
		t.Errorf("root bandwidth %v", bw)
	}
	if _, err := s.Bandwidth(999); !errors.Is(err, ErrNoNode) {
		t.Errorf("unknown err %v", err)
	}
}

func TestInfoDepthWalk(t *testing.T) {
	s, ids := buildPaperFig2(t)
	info, err := s.Info(ids["user1"])
	if err != nil {
		t.Fatal(err)
	}
	if !info.Leaf || info.LeafName != "sfq" || info.Path != "/best-effort/user1" {
		t.Errorf("info %+v", info)
	}
	if d, _ := s.Depth(ids["user1"]); d != 2 {
		t.Errorf("depth %d", d)
	}
	if d, _ := s.Depth(RootID); d != 0 {
		t.Errorf("root depth %d", d)
	}
	count := 0
	s.Walk(func(*Node) { count++ })
	if count != 6 {
		t.Errorf("walked %d nodes, want 6", count)
	}
	if _, err := s.Info(999); !errors.Is(err, ErrNoNode) {
		t.Errorf("info unknown err %v", err)
	}
	if _, err := s.Depth(999); !errors.Is(err, ErrNoNode) {
		t.Errorf("depth unknown err %v", err)
	}
}

func TestThreadsListingSorted(t *testing.T) {
	s, ids := buildPaperFig2(t)
	for _, id := range []int{5, 2, 9} {
		th := sched.NewThread(id, "t", 1)
		if err := s.Attach(th, ids["user1"]); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := s.Threads(ids["user1"])
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0].ID != 2 || ts[1].ID != 5 || ts[2].ID != 9 {
		t.Errorf("threads %v", ts)
	}
	if _, err := s.Threads(ids["best-effort"]); !errors.Is(err, ErrNotLeaf) {
		t.Errorf("threads of non-leaf err %v", err)
	}
}

func TestStringAndDOT(t *testing.T) {
	s, ids := buildPaperFig2(t)
	th := sched.NewThread(1, "t", 1)
	if err := s.Attach(th, ids["user1"]); err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"best-effort", "user1", "leaf=sfq", "w=6"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	var b strings.Builder
	if err := s.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{"digraph", "user2", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestWriteScript(t *testing.T) {
	s, ids := buildPaperFig2(t)
	_ = ids
	var b strings.Builder
	if err := s.WriteScript(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mknod /hard-real-time 1 edf",
		"mknod /soft-real-time 3 sfq",
		"mknod /best-effort 6\n",
		"mknod /best-effort/user1 1 sfq",
		"mknod /best-effort/user2 1 svr4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("script missing %q:\n%s", want, out)
		}
	}
	if w := s.Node(ids["user2"]).Weight(); w != 1 {
		t.Errorf("Weight accessor %v", w)
	}
}
