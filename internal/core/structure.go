// Package core implements the paper's primary contribution: a hierarchical
// CPU scheduling framework in which an operating system partitions CPU
// bandwidth among application classes with Start-time Fair Queuing (SFQ),
// and each class partitions its allocation among sub-classes or threads
// with a scheduler of its own choosing.
//
// The hierarchy is a tree, the "scheduling structure" of §4. Every thread
// belongs to exactly one leaf node; every node has a weight determining the
// share of its parent's bandwidth it receives. Intermediate nodes are
// scheduled by SFQ: each carries a start tag and a finish tag in its
// parent's virtual-time domain, and every parent dispatches the runnable
// child with the minimum start tag. Leaf nodes delegate to a pluggable
// sched.Scheduler (SFQ, EDF, RM, SVR4 TS, ...).
//
// The API mirrors the paper's system calls:
//
//	hsfq_mknod   -> Structure.Mknod / MknodPath
//	hsfq_parse   -> Structure.Parse
//	hsfq_rmnod   -> Structure.Rmnod
//	hsfq_move    -> Structure.Move
//	hsfq_admin   -> Structure.SetNodeWeight, NodeWeightOf, Info, ...
//
// and the kernel entry points:
//
//	hsfq_schedule -> Structure.Pick
//	hsfq_update   -> Structure.Charge
//	hsfq_setrun   -> Structure.Enqueue (first runnable thread in a leaf)
//	hsfq_sleep    -> Structure.Charge/Remove (last runnable thread leaves)
//
// Structure itself implements sched.Scheduler, so the simulated CPU drives
// a full hierarchy and a flat leaf scheduler through the same interface.
package core

import (
	"errors"
	"fmt"
	"strings"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// NodeID identifies a node in a scheduling structure, as the int node
// identifiers returned by hsfq_mknod do in the paper.
type NodeID int

// RootID is the identifier of the root node of every structure.
const RootID NodeID = 1

// Errors returned by the structure-manipulation API.
var (
	ErrNoNode        = errors.New("core: no such node")
	ErrNotLeaf       = errors.New("core: node is not a leaf")
	ErrIsLeaf        = errors.New("core: node is a leaf")
	ErrHasChildren   = errors.New("core: node has children")
	ErrHasThreads    = errors.New("core: node has threads")
	ErrDupName       = errors.New("core: sibling with that name exists")
	ErrBadWeight     = errors.New("core: weight must be positive")
	ErrBadName       = errors.New("core: invalid node name")
	ErrNoThread      = errors.New("core: thread not in structure")
	ErrThreadRunning = errors.New("core: thread is runnable; block it before moving")
)

// Node is one vertex of the scheduling structure. Exported accessors are
// read-only; all mutation goes through Structure so tag and runnable-set
// invariants hold.
type Node struct {
	id       NodeID
	name     string // path component; "" for the root
	parent   *Node
	children []*Node
	byName   map[string]*Node

	weight float64

	// SFQ state, in the parent's virtual-time domain.
	start, finish float64
	seq           uint64
	heapIdx       int // index in parent's runnable heap; -1 if not runnable

	// Virtual-time state for this node's own domain.
	runq      sim.Heap[*Node] // runnable children ordered by start tag
	maxFinish float64         // max finish tag ever assigned to a child

	// Leaf state.
	leaf    sched.Scheduler
	threads map[*sched.Thread]struct{}
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Weight returns the node's weight.
func (n *Node) Weight() float64 { return n.weight }

// IsLeaf reports whether the node is a leaf (has an attached scheduler).
func (n *Node) IsLeaf() bool { return n.leaf != nil }

// Leaf returns the node's leaf scheduler, or nil for intermediate nodes.
func (n *Node) Leaf() sched.Scheduler { return n.leaf }

// Tags returns the node's SFQ start and finish tags in its parent's
// virtual-time domain. The root carries no tags and reports zeros.
func (n *Node) Tags() (start, finish float64) { return n.start, n.finish }

// Runnable reports whether the node is eligible for scheduling, i.e. some
// leaf in its subtree has a runnable thread.
func (n *Node) Runnable() bool {
	if n.parent == nil {
		return n.runq.Len() > 0
	}
	return n.heapIdx != -1
}

// VirtualTime returns v(t) of the node's own scheduling domain: the
// minimum start tag among runnable children while busy, and the maximum
// finish tag ever assigned while idle (§3, rule 2). Leaves report 0.
func (n *Node) VirtualTime() float64 {
	if n.runq.Len() > 0 {
		return n.runq.Min().start
	}
	return n.maxFinish
}

// Children returns the node's children in creation order.
func (n *Node) Children() []*Node {
	out := make([]*Node, len(n.children))
	copy(out, n.children)
	return out
}

// HeapLess implements sim.HeapItem so a node can sit on its parent's
// runnable heap; it is not part of the public API. Runnable children are
// ordered by (start tag, insertion sequence): "threads are serviced in the
// increasing order of the start tags; ties are broken arbitrarily" — we
// break them FIFO for determinism.
func (n *Node) HeapLess(o *Node) bool {
	if n.start != o.start {
		return n.start < o.start
	}
	return n.seq < o.seq
}

// HeapIndex implements sim.HeapItem; it is not part of the public API.
func (n *Node) HeapIndex() *int { return &n.heapIdx }

// Structure is a scheduling structure: the tree plus the thread-to-leaf
// map. It implements sched.Scheduler.
type Structure struct {
	root     *Node
	nodes    map[NodeID]*Node
	byThread map[*sched.Thread]*Node
	nextID   NodeID
	seq      uint64
	runnable int // total runnable threads across all leaves
	picked   *sched.Thread
	pickedAt *Node

	// SaveState scratch, reused so periodic checkpointing stays
	// allocation-free on the warm path.
	saveScratch []*Node
}

// NewStructure returns a structure containing only the root node. The root
// has no weight and no scheduler of its own; it only dispatches its
// children by SFQ.
func NewStructure() *Structure {
	root := &Node{id: RootID, weight: 1, heapIdx: -1, byName: make(map[string]*Node)}
	return &Structure{
		root:     root,
		nodes:    map[NodeID]*Node{RootID: root},
		byThread: make(map[*sched.Thread]*Node),
		nextID:   RootID + 1,
	}
}

// Root returns the root node.
func (s *Structure) Root() *Node { return s.root }

// Node returns the node with the given id, or nil.
func (s *Structure) Node(id NodeID) *Node { return s.nodes[id] }

// Mknod creates a node named name (a single path component) as a child of
// parent, with the given weight. If leaf is non-nil the node is a leaf
// scheduled internally by that scheduler; otherwise it is an intermediate
// node whose children are scheduled by SFQ. It returns the new node's id,
// mirroring hsfq_mknod.
func (s *Structure) Mknod(name string, parent NodeID, weight float64, leaf sched.Scheduler) (NodeID, error) {
	p, ok := s.nodes[parent]
	if !ok {
		return 0, fmt.Errorf("%w: parent %d", ErrNoNode, parent)
	}
	if p.IsLeaf() {
		return 0, fmt.Errorf("%w: parent %q", ErrIsLeaf, s.PathOf(parent))
	}
	if weight <= 0 {
		return 0, fmt.Errorf("%w: %v", ErrBadWeight, weight)
	}
	if name == "" || strings.ContainsRune(name, '/') || name == "." || name == ".." {
		return 0, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if _, dup := p.byName[name]; dup {
		return 0, fmt.Errorf("%w: %q under %q", ErrDupName, name, s.PathOf(parent))
	}
	n := &Node{
		id:      s.nextID,
		name:    name,
		parent:  p,
		weight:  weight,
		heapIdx: -1,
		byName:  make(map[string]*Node),
		leaf:    leaf,
	}
	if leaf != nil {
		n.threads = make(map[*sched.Thread]struct{})
	}
	s.nextID++
	p.children = append(p.children, n)
	p.byName[name] = n
	s.nodes[n.id] = n
	return n.id, nil
}

// MknodPath creates every missing intermediate node along path (with
// weight 1) and then the final node with the given weight and leaf
// scheduler, a convenience equivalent to repeated Mknod calls.
func (s *Structure) MknodPath(path string, weight float64, leaf sched.Scheduler) (NodeID, error) {
	if !strings.HasPrefix(path, "/") {
		return 0, fmt.Errorf("%w: path %q is not absolute", ErrBadName, path)
	}
	parts := splitPath(path)
	if len(parts) == 0 {
		return 0, fmt.Errorf("%w: path %q names the root", ErrBadName, path)
	}
	cur := s.root
	for _, comp := range parts[:len(parts)-1] {
		child, ok := cur.byName[comp]
		if !ok {
			id, err := s.Mknod(comp, cur.id, 1, nil)
			if err != nil {
				return 0, err
			}
			child = s.nodes[id]
		}
		cur = child
	}
	return s.Mknod(parts[len(parts)-1], cur.id, weight, leaf)
}

// Parse resolves a name to a node id, mirroring hsfq_parse. Absolute names
// start with "/"; relative names are resolved against hint. "." and ".."
// components are honored.
func (s *Structure) Parse(name string, hint NodeID) (NodeID, error) {
	var cur *Node
	if strings.HasPrefix(name, "/") {
		cur = s.root
	} else {
		var ok bool
		cur, ok = s.nodes[hint]
		if !ok {
			return 0, fmt.Errorf("%w: hint %d", ErrNoNode, hint)
		}
	}
	for _, comp := range splitPath(name) {
		switch comp {
		case ".":
		case "..":
			if cur.parent != nil {
				cur = cur.parent
			}
		default:
			child, ok := cur.byName[comp]
			if !ok {
				return 0, fmt.Errorf("%w: %q (component %q)", ErrNoNode, name, comp)
			}
			cur = child
		}
	}
	return cur.id, nil
}

// PathOf returns the absolute name of a node, e.g. "/best-effort/user1".
func (s *Structure) PathOf(id NodeID) string {
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Sprintf("<bad node %d>", id)
	}
	if n.parent == nil {
		return "/"
	}
	var parts []string
	for ; n.parent != nil; n = n.parent {
		parts = append(parts, n.name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// Rmnod removes a node, mirroring hsfq_rmnod: "a node can be removed only
// if it does not have any child nodes" — or, for leaves, any threads.
func (s *Structure) Rmnod(id NodeID) error {
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	if n.parent == nil {
		return fmt.Errorf("core: cannot remove the root")
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %q", ErrHasChildren, s.PathOf(id))
	}
	if len(n.threads) > 0 {
		return fmt.Errorf("%w: %q", ErrHasThreads, s.PathOf(id))
	}
	if n.heapIdx != -1 {
		return fmt.Errorf("core: node %q is runnable", s.PathOf(id))
	}
	p := n.parent
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	delete(p.byName, n.name)
	delete(s.nodes, id)
	return nil
}

// Attach places a blocked or new thread in a leaf node. The thread starts
// competing when it is enqueued.
func (s *Structure) Attach(t *sched.Thread, leaf NodeID) error {
	n, ok := s.nodes[leaf]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoNode, leaf)
	}
	if !n.IsLeaf() {
		return fmt.Errorf("%w: %q", ErrNotLeaf, s.PathOf(leaf))
	}
	if _, dup := s.byThread[t]; dup {
		return fmt.Errorf("core: thread %v already attached; use Move", t)
	}
	n.threads[t] = struct{}{}
	s.byThread[t] = n
	t.NodeSlot.Set(s, n)
	return nil
}

// Move reassigns a blocked thread to another leaf, mirroring hsfq_move.
// Runnable threads must be blocked first so their leaf's tags settle.
func (s *Structure) Move(t *sched.Thread, to NodeID) error {
	from, ok := s.byThread[t]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoThread, t)
	}
	if t.State == sched.StateRunnable || t.State == sched.StateRunning {
		return fmt.Errorf("%w: %v", ErrThreadRunning, t)
	}
	dst, ok := s.nodes[to]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoNode, to)
	}
	if !dst.IsLeaf() {
		return fmt.Errorf("%w: %q", ErrNotLeaf, s.PathOf(to))
	}
	delete(from.threads, t)
	dst.threads[t] = struct{}{}
	s.byThread[t] = dst
	t.NodeSlot.Set(s, dst)
	return nil
}

// LeafOf returns the leaf node a thread is attached to, or nil.
func (s *Structure) LeafOf(t *sched.Thread) *Node { return s.byThread[t] }

func splitPath(p string) []string {
	var parts []string
	for _, c := range strings.Split(p, "/") {
		if c != "" {
			parts = append(parts, c)
		}
	}
	return parts
}
