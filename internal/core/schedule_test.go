package core

import (
	"math"
	"testing"
	"testing/quick"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// driveStructure runs n Pick/Charge rounds of fixed-size quanta over the
// structure and returns per-thread service.
func driveStructure(s *Structure, n int, used sched.Work) map[*sched.Thread]sched.Work {
	got := make(map[*sched.Thread]sched.Work)
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		t := s.Pick(now)
		if t == nil {
			break
		}
		got[t] += used
		s.Charge(t, used, now, true)
		now += sim.Millisecond
	}
	return got
}

func TestHierarchicalProportions(t *testing.T) {
	// Fig. 2 shape: hard 1, soft 3, best-effort 6 (user1/user2 at 1:1).
	s, ids := buildPaperFig2(t)
	mkThread := func(id int, leaf string) *sched.Thread {
		th := sched.NewThread(id, leaf, 1)
		if err := s.Attach(th, ids[leaf]); err != nil {
			t.Fatal(err)
		}
		s.Enqueue(th, 0)
		return th
	}
	hard := mkThread(1, "hard-real-time")
	hard.Period = 100 * sim.Millisecond
	soft := mkThread(2, "soft-real-time")
	u1 := mkThread(3, "user1")
	u2 := mkThread(4, "user2")

	got := driveStructure(s, 10000, 1000)
	total := float64(got[hard] + got[soft] + got[u1] + got[u2])
	checkShare := func(name string, work sched.Work, want float64) {
		if share := float64(work) / total; math.Abs(share-want) > 0.01 {
			t.Errorf("%s share %.3f, want %.3f", name, share, want)
		}
	}
	checkShare("hard", got[hard], 0.1)
	checkShare("soft", got[soft], 0.3)
	checkShare("user1", got[u1], 0.3)
	checkShare("user2", got[u2], 0.3)
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestResidualRedistribution(t *testing.T) {
	// Example 1 of §2: when hard and soft real-time are empty, user1 and
	// user2 still split evenly; when they fill up, best-effort drops to
	// 60% and the users keep splitting evenly.
	s, ids := buildPaperFig2(t)
	u1 := sched.NewThread(1, "u1", 1)
	u2 := sched.NewThread(2, "u2", 1)
	must(s.Attach(u1, ids["user1"]))
	must(s.Attach(u2, ids["user2"]))
	s.Enqueue(u1, 0)
	s.Enqueue(u2, 0)

	phase1 := driveStructure(s, 1000, 1000)
	if math.Abs(float64(phase1[u1])-float64(phase1[u2])) > 2000 {
		t.Errorf("idle-classes split %v:%v", phase1[u1], phase1[u2])
	}

	soft := sched.NewThread(3, "soft", 1)
	must(s.Attach(soft, ids["soft-real-time"]))
	s.Enqueue(soft, sim.Second)
	phase2 := driveStructure(s, 10000, 1000)
	totalBE := float64(phase2[u1] + phase2[u2])
	totalAll := totalBE + float64(phase2[soft])
	// hard-real-time is empty: residual splits 3:6 soft:best-effort.
	if share := totalBE / totalAll; math.Abs(share-2.0/3.0) > 0.01 {
		t.Errorf("best-effort share %.3f, want 0.667", share)
	}
	if math.Abs(float64(phase2[u1])-float64(phase2[u2])) > 2000 {
		t.Errorf("user split %v:%v under contention", phase2[u1], phase2[u2])
	}
}

func TestSetRunSleepPropagation(t *testing.T) {
	s, ids := buildPaperFig2(t)
	be := s.Node(ids["best-effort"])
	u1 := s.Node(ids["user1"])
	if be.Runnable() || u1.Runnable() {
		t.Fatal("empty structure has runnable nodes")
	}
	th := sched.NewThread(1, "t", 1)
	must(s.Attach(th, ids["user1"]))
	s.Enqueue(th, 0)
	if !be.Runnable() || !u1.Runnable() || !s.Root().Runnable() {
		t.Error("setrun did not propagate to ancestors")
	}
	if s.Len() != 1 {
		t.Errorf("Len %d", s.Len())
	}
	s.Remove(th, 0)
	if be.Runnable() || u1.Runnable() || s.Root().Runnable() {
		t.Error("sleep did not propagate to ancestors")
	}
	if s.Len() != 0 {
		t.Errorf("Len %d after remove", s.Len())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSetRunStopsAtRunnableAncestor(t *testing.T) {
	s, ids := buildPaperFig2(t)
	a := sched.NewThread(1, "a", 1)
	b := sched.NewThread(2, "b", 1)
	must(s.Attach(a, ids["user1"]))
	must(s.Attach(b, ids["user2"]))
	s.Enqueue(a, 0)
	beStart, _ := s.Node(ids["best-effort"]).Tags()
	// Serving a advances best-effort's tags.
	for i := 0; i < 5; i++ {
		th := s.Pick(0)
		s.Charge(th, 1000, 0, true)
	}
	// b waking must not restamp the already-runnable best-effort node.
	s.Enqueue(b, 0)
	beStart2, _ := s.Node(ids["best-effort"]).Tags()
	if beStart2 < beStart {
		t.Errorf("best-effort start tag rewound on inner wake: %v -> %v", beStart, beStart2)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNodeNoCreditAfterIdle(t *testing.T) {
	// A class that sleeps must not bank bandwidth: after it returns, the
	// split is proportional from then on, with no catch-up binge.
	s := NewStructure()
	aID, _ := s.Mknod("a", RootID, 1, q())
	bID, _ := s.Mknod("b", RootID, 1, q())
	ta := sched.NewThread(1, "ta", 1)
	tb := sched.NewThread(2, "tb", 1)
	must(s.Attach(ta, aID))
	must(s.Attach(tb, bID))
	s.Enqueue(ta, 0)
	// a runs alone for 100 quanta.
	for i := 0; i < 100; i++ {
		th := s.Pick(0)
		s.Charge(th, 1000, 0, true)
	}
	s.Enqueue(tb, sim.Second)
	got := driveStructure(s, 1000, 1000)
	if math.Abs(float64(got[ta])-float64(got[tb])) > 2000 {
		t.Errorf("post-return split %v:%v, want equal (no catch-up)", got[ta], got[tb])
	}
}

func TestQuantumComesFromLeaf(t *testing.T) {
	s := NewStructure()
	aID, _ := s.Mknod("a", RootID, 1, sched.NewSFQ(7*sim.Millisecond))
	ta := sched.NewThread(1, "ta", 1)
	must(s.Attach(ta, aID))
	s.Enqueue(ta, 0)
	if got := s.Quantum(ta, 0); got != 7*sim.Millisecond {
		t.Errorf("quantum %v", got)
	}
	s.Remove(ta, 0)
}

func TestPreemptsLeafLocal(t *testing.T) {
	s := NewStructure()
	edfID, _ := s.Mknod("edf", RootID, 1, sched.NewEDF(0))
	sfqID, _ := s.Mknod("sfq", RootID, 1, q())
	long := sched.NewThread(1, "long", 1)
	long.RelDeadline = sim.Second
	short := sched.NewThread(2, "short", 1)
	short.RelDeadline = 10 * sim.Millisecond
	other := sched.NewThread(3, "other", 1)
	must(s.Attach(long, edfID))
	must(s.Attach(short, edfID))
	must(s.Attach(other, sfqID))

	s.Enqueue(long, 0)
	if got := s.Pick(0); got != long {
		t.Fatalf("picked %v", got)
	}
	// Same-leaf EDF wakeup preempts; cross-leaf does not.
	s.Enqueue(short, 0)
	if !s.Preempts(long, short, 0) {
		t.Error("same-leaf EDF preemption denied")
	}
	s.Enqueue(other, 0)
	if s.Preempts(long, other, 0) {
		t.Error("cross-leaf preemption allowed")
	}
	s.Charge(long, 100, 0, true)
}

func TestPickChargeMismatchPanics(t *testing.T) {
	s := NewStructure()
	aID, _ := s.Mknod("a", RootID, 1, q())
	ta := sched.NewThread(1, "ta", 1)
	tb := sched.NewThread(2, "tb", 1)
	must(s.Attach(ta, aID))
	must(s.Attach(tb, aID))
	s.Enqueue(ta, 0)
	s.Enqueue(tb, 0)
	s.Pick(0)
	defer func() {
		if recover() == nil {
			t.Error("charging the non-picked thread did not panic")
		}
	}()
	s.Charge(tb, 1, 0, true)
}

func TestUnattachedThreadPanics(t *testing.T) {
	s := NewStructure()
	th := sched.NewThread(1, "t", 1)
	for name, fn := range map[string]func(){
		"enqueue": func() { s.Enqueue(th, 0) },
		"remove":  func() { s.Remove(th, 0) },
		"charge":  func() { s.Charge(th, 1, 0, true) },
		"quantum": func() { s.Quantum(th, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of unattached thread did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEmptyStructurePickNil(t *testing.T) {
	s := NewStructure()
	if got := s.Pick(0); got != nil {
		t.Errorf("Pick on empty structure = %v", got)
	}
	if s.Name() != "hsfq" {
		t.Errorf("name %q", s.Name())
	}
}

func TestDeepHierarchyStillProportional(t *testing.T) {
	// Two leaves at very different depths with equal root-relative
	// bandwidth must receive equal service: depth does not distort tags.
	s := NewStructure()
	shallowID, _ := s.Mknod("shallow", RootID, 1, q())
	deepParent := RootID
	var err error
	var id NodeID
	for i := 0; i < 10; i++ {
		id, err = s.Mknod("d", deepParent, 1, nil)
		must(err)
		deepParent = id
	}
	deepID, _ := s.Mknod("leaf", deepParent, 1, q())

	ta := sched.NewThread(1, "shallow", 1)
	tb := sched.NewThread(2, "deep", 1)
	must(s.Attach(ta, shallowID))
	must(s.Attach(tb, deepID))
	s.Enqueue(ta, 0)
	s.Enqueue(tb, 0)
	got := driveStructure(s, 2000, 1000)
	if math.Abs(float64(got[ta])-float64(got[tb])) > 2000 {
		t.Errorf("depth skewed allocation %v:%v", got[ta], got[tb])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRandomOpsPreserveInvariants drives a random but legal sequence of
// operations (enqueue, remove, pick+charge, weight changes, node
// creation) and checks the structural invariants throughout.
func TestRandomOpsPreserveInvariants(t *testing.T) {
	f := func(seed uint64, steps uint16) bool {
		rng := sim.NewRand(seed)
		s := NewStructure()
		leaves := []NodeID{}
		for i := 0; i < 3; i++ {
			id, err := s.Mknod(string(rune('a'+i)), RootID, float64(i+1), q())
			if err != nil {
				return false
			}
			leaves = append(leaves, id)
		}
		var threads []*sched.Thread
		runnable := map[*sched.Thread]bool{}
		for i := 0; i < 6; i++ {
			th := sched.NewThread(i+1, "t", float64(rng.Intn(5)+1))
			if err := s.Attach(th, leaves[rng.Intn(len(leaves))]); err != nil {
				return false
			}
			threads = append(threads, th)
		}
		now := sim.Time(0)
		n := int(steps)%500 + 50
		for i := 0; i < n; i++ {
			now += sim.Millisecond
			switch rng.Intn(10) {
			case 0, 1, 2: // wake a blocked thread
				th := threads[rng.Intn(len(threads))]
				if !runnable[th] {
					s.Enqueue(th, now)
					runnable[th] = true
				}
			case 3: // remove a runnable thread
				th := threads[rng.Intn(len(threads))]
				if runnable[th] {
					s.Remove(th, now)
					runnable[th] = false
				}
			case 4: // change a node weight
				id := leaves[rng.Intn(len(leaves))]
				if err := s.SetNodeWeight(id, float64(rng.Intn(9)+1)); err != nil {
					return false
				}
			case 5: // change a thread weight
				th := threads[rng.Intn(len(threads))]
				if err := s.SetThreadWeight(th, float64(rng.Intn(9)+1)); err != nil {
					return false
				}
			default: // schedule
				th := s.Pick(now)
				if th == nil {
					continue
				}
				stays := rng.Intn(4) > 0
				s.Charge(th, sched.Work(rng.Intn(10000)+1), now, stays)
				if !stays {
					runnable[th] = false
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Logf("invariant violated at step %d: %v", i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
