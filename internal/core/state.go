package core

import (
	"fmt"
	"math"
	"slices"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Structure implements sched.Stater: the whole hierarchy — per-node SFQ
// tags, runnable-heap memberships, and every leaf scheduler's state —
// round-trips through a checkpoint. The tree shape itself is NOT
// serialized: the rebuild recreates the same nodes with the same IDs
// deterministically, and LoadState verifies the checkpoint describes the
// structure it is being loaded into (same node set, same leaf/interior
// split) before touching anything.
var _ sched.Stater = (*Structure)(nil)

// SaveState implements sched.Stater. Nodes are emitted sorted by ID so
// the encoding is canonical; leaf schedulers must implement sched.Stater
// themselves.
func (s *Structure) SaveState(e *sim.Enc) error {
	e.U64(s.seq)
	e.Int(s.runnable)
	if s.picked != nil {
		e.Int(s.picked.ID)
	} else {
		e.Int(-1)
	}
	if s.pickedAt != nil {
		e.Int(int(s.pickedAt.id))
	} else {
		e.Int(-1)
	}

	s.saveScratch = s.saveScratch[:0]
	for _, n := range s.nodes {
		s.saveScratch = append(s.saveScratch, n)
	}
	slices.SortFunc(s.saveScratch, func(a, b *Node) int { return int(a.id) - int(b.id) })
	e.Int(len(s.saveScratch))
	for _, n := range s.saveScratch {
		e.Int(int(n.id))
		e.F64(n.weight)
		e.F64(n.start)
		e.F64(n.finish)
		e.U64(n.seq)
		e.F64(n.maxFinish)
		e.Bool(n.heapIdx != -1)
		if n.IsLeaf() {
			e.Bool(true)
			st, ok := n.leaf.(sched.Stater)
			if !ok {
				return fmt.Errorf("core: leaf %q scheduler %q does not support checkpointing",
					s.PathOf(n.id), n.leaf.Name())
			}
			if err := st.SaveState(e); err != nil {
				return err
			}
		} else {
			e.Bool(false)
		}
	}
	return nil
}

// LoadState implements sched.Stater. Runnable-heap memberships are
// rebuilt by pushing nodes in ID order, which is sound because the heap
// order (start tag, stamp sequence) is a strict total order: the
// sequence of minima the hsfq_schedule walk observes does not depend on
// the heap's internal layout.
func (s *Structure) LoadState(d *sim.Dec, resolve func(id int) *sched.Thread) error {
	if s.runnable != 0 || s.root.runq.Len() != 0 {
		return fmt.Errorf("core: LoadState into a structure with runnable threads")
	}
	s.seq = d.U64()
	runnable := d.Int()
	pickedID := d.Int()
	pickedAtID := d.Int()
	n := d.Count(35)
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(s.nodes) {
		return fmt.Errorf("core: checkpoint has %d nodes, structure has %d", n, len(s.nodes))
	}
	if runnable < 0 {
		return fmt.Errorf("core: negative runnable count %d", runnable)
	}

	var inRunq []*Node
	prev := math.MinInt
	leafRunnable := 0
	for i := 0; i < n; i++ {
		id := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if id <= prev {
			return fmt.Errorf("core: node IDs not strictly increasing at %d", id)
		}
		prev = id
		nd := s.nodes[NodeID(id)]
		if nd == nil {
			return fmt.Errorf("core: checkpoint references unknown node %d", id)
		}
		weight := d.F64()
		nd.start = d.F64()
		nd.finish = d.F64()
		nd.seq = d.U64()
		nd.maxFinish = d.F64()
		inQ := d.Bool()
		isLeaf := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if !(weight > 0) {
			return fmt.Errorf("core: node %d with non-positive weight %v", id, weight)
		}
		nd.weight = weight
		if isLeaf != nd.IsLeaf() {
			return fmt.Errorf("core: node %d leafness mismatch (checkpoint %v, structure %v)",
				id, isLeaf, nd.IsLeaf())
		}
		if inQ {
			if nd.parent == nil {
				return fmt.Errorf("core: root marked runnable in a parent heap")
			}
			inRunq = append(inRunq, nd)
		}
		if isLeaf {
			st, ok := nd.leaf.(sched.Stater)
			if !ok {
				return fmt.Errorf("core: leaf %q scheduler %q does not support checkpointing",
					s.PathOf(nd.id), nd.leaf.Name())
			}
			if err := st.LoadState(d, resolve); err != nil {
				return err
			}
			leafRunnable += nd.leaf.Len()
		}
	}
	if leafRunnable != runnable {
		return fmt.Errorf("core: leaves hold %d runnable threads but structure count is %d",
			leafRunnable, runnable)
	}
	for _, nd := range inRunq {
		nd.parent.runq.Push(nd)
	}
	s.runnable = runnable

	s.picked, s.pickedAt = nil, nil
	if pickedID != -1 {
		t := resolve(pickedID)
		if t == nil {
			return fmt.Errorf("core: picked thread %d unknown", pickedID)
		}
		nd := s.nodes[NodeID(pickedAtID)]
		if nd == nil || !nd.IsLeaf() {
			return fmt.Errorf("core: picked-at node %d missing or not a leaf", pickedAtID)
		}
		s.picked, s.pickedAt = t, nd
	} else if pickedAtID != -1 {
		return fmt.Errorf("core: picked-at node %d without a picked thread", pickedAtID)
	}
	return d.Err()
}
