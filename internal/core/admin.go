package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hsfq/internal/sched"
)

// This file holds the hsfq_admin-style operations: weight changes,
// introspection, invariant checking, and DOT export.

// SetNodeWeight changes a node's weight, the paper's canonical hsfq_admin
// example ("changing the weight of a node"). The change takes effect at
// the node's next charge; accumulated tags are not rewritten, so past
// service stays accounted at the old rate — exactly how the paper's Fig. 11
// dynamic-allocation experiment behaves.
func (s *Structure) SetNodeWeight(id NodeID, weight float64) error {
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	if n.parent == nil {
		return fmt.Errorf("core: the root has no weight")
	}
	if weight <= 0 {
		return fmt.Errorf("%w: %v", ErrBadWeight, weight)
	}
	n.weight = weight
	return nil
}

// NodeWeightOf returns a node's weight, the read half of hsfq_admin.
func (s *Structure) NodeWeightOf(id NodeID) (float64, error) {
	n, ok := s.nodes[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	return n.weight, nil
}

// SetThreadWeight changes a thread's weight. If the thread's leaf
// scheduler tracks aggregate weight (sched.WeightSetter), the change is
// routed through it so bookkeeping stays consistent even while the thread
// is runnable.
func (s *Structure) SetThreadWeight(t *sched.Thread, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("%w: %v", ErrBadWeight, weight)
	}
	n := s.nodeOf(t)
	if n == nil {
		return fmt.Errorf("%w: %v", ErrNoThread, t)
	}
	if ws, ok := n.leaf.(sched.WeightSetter); ok {
		ws.SetWeight(t, weight)
		return nil
	}
	t.Weight = weight
	return nil
}

// Bandwidth returns the fraction of total CPU bandwidth the node is
// entitled to when every node is busy: the product along the path of
// weight_i / sum(sibling weights).
func (s *Structure) Bandwidth(id NodeID) (float64, error) {
	n, ok := s.nodes[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	frac := 1.0
	for ; n.parent != nil; n = n.parent {
		var sum float64
		for _, c := range n.parent.children {
			sum += c.weight
		}
		frac *= n.weight / sum
	}
	return frac, nil
}

// NodeInfo is a read-only snapshot of a node, for tools and tests.
type NodeInfo struct {
	ID          NodeID
	Path        string
	Weight      float64
	Leaf        bool
	LeafName    string
	Runnable    bool
	Start       float64
	Finish      float64
	VirtualTime float64
	Children    []NodeID
	Threads     int
}

// Info returns a snapshot of the node with the given id.
func (s *Structure) Info(id NodeID) (NodeInfo, error) {
	n, ok := s.nodes[id]
	if !ok {
		return NodeInfo{}, fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	info := NodeInfo{
		ID:          n.id,
		Path:        s.PathOf(id),
		Weight:      n.weight,
		Leaf:        n.IsLeaf(),
		Runnable:    n.Runnable(),
		Start:       n.start,
		Finish:      n.finish,
		VirtualTime: n.VirtualTime(),
		Threads:     len(n.threads),
	}
	if n.IsLeaf() {
		info.LeafName = n.leaf.Name()
	}
	for _, c := range n.children {
		info.Children = append(info.Children, c.id)
	}
	return info, nil
}

// Walk visits every node in depth-first creation order.
func (s *Structure) Walk(fn func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		fn(n)
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(s.root)
}

// Depth returns the number of edges from the root to the node.
func (s *Structure) Depth(id NodeID) (int, error) {
	n, ok := s.nodes[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	d := 0
	for ; n.parent != nil; n = n.parent {
		d++
	}
	return d, nil
}

// CheckInvariants validates the structural and scheduling invariants of
// the tree; tests and the property suite call it after random operation
// sequences. It returns the first violation found, or nil.
func (s *Structure) CheckInvariants() error {
	var err error
	s.Walk(func(n *Node) {
		if err != nil {
			return
		}
		err = s.checkNode(n)
	})
	return err
}

func (s *Structure) checkNode(n *Node) error {
	path := s.PathOf(n.id)
	if n.parent == nil && n != s.root {
		return fmt.Errorf("core: non-root node %q without parent", path)
	}
	if n.weight <= 0 {
		return fmt.Errorf("core: node %q with weight %v", path, n.weight)
	}
	if n.IsLeaf() != (n.leaf != nil) {
		return fmt.Errorf("core: node %q leaf state inconsistent", path)
	}
	if n.IsLeaf() && len(n.children) > 0 {
		return fmt.Errorf("core: leaf %q has children", path)
	}
	// byName map mirrors the children slice.
	if len(n.byName) != len(n.children) {
		return fmt.Errorf("core: node %q name index out of sync", path)
	}
	for _, c := range n.children {
		if n.byName[c.name] != c {
			return fmt.Errorf("core: node %q child %q not in name index", path, c.name)
		}
		if c.parent != n {
			return fmt.Errorf("core: child %q of %q has wrong parent", c.name, path)
		}
	}
	// Heap membership: exactly the runnable children, each with a
	// consistent index and start >= finish never required, but
	// start <= finish always (F = S + l/w with l >= 0).
	runq := n.runq.Items()
	inHeap := make(map[*Node]bool, len(runq))
	for i, c := range runq {
		if c.heapIdx != i {
			return fmt.Errorf("core: node %q heap index %d inconsistent", s.PathOf(c.id), i)
		}
		if c.parent != n {
			return fmt.Errorf("core: node %q in wrong heap", s.PathOf(c.id))
		}
		inHeap[c] = true
	}
	// Heap order property.
	for i := range runq {
		for _, j := range []int{2*i + 1, 2*i + 2} {
			if j < len(runq) && runq[j].HeapLess(runq[i]) {
				return fmt.Errorf("core: heap order violated under %q", path)
			}
		}
	}
	for _, c := range n.children {
		if c.heapIdx != -1 && !inHeap[c] {
			return fmt.Errorf("core: node %q claims heap membership it lacks", s.PathOf(c.id))
		}
		if c.IsLeaf() {
			if (c.leaf.Len() > 0) != (c.heapIdx != -1) {
				return fmt.Errorf("core: leaf %q runnable flag out of sync with scheduler", s.PathOf(c.id))
			}
		} else {
			if (c.runq.Len() > 0) != (c.heapIdx != -1) {
				return fmt.Errorf("core: node %q runnable flag out of sync with children", s.PathOf(c.id))
			}
		}
		if c.start < 0 || c.finish < 0 {
			return fmt.Errorf("core: node %q has negative tags", s.PathOf(c.id))
		}
	}
	if n.IsLeaf() {
		for t, leaf := range s.byThread {
			if leaf == n {
				if _, ok := n.threads[t]; !ok {
					return fmt.Errorf("core: thread %v missing from leaf %q", t, path)
				}
			}
		}
		for t := range n.threads {
			if s.byThread[t] != n {
				return fmt.Errorf("core: thread %v in leaf %q but mapped elsewhere", t, path)
			}
		}
	}
	return nil
}

// WriteDOT renders the structure in Graphviz DOT format, one box per node
// labeled with its path component, weight, and leaf algorithm.
func (s *Structure) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph hsfq {\n  rankdir=TB;\n  node [shape=box];\n")
	s.Walk(func(n *Node) {
		label := n.name
		if n.parent == nil {
			label = "root"
		}
		if n.IsLeaf() {
			label += fmt.Sprintf("\\nw=%g leaf=%s threads=%d", n.weight, n.leaf.Name(), len(n.threads))
		} else if n.parent != nil {
			label += fmt.Sprintf("\\nw=%g", n.weight)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", n.id, label)
		if n.parent != nil {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.parent.id, n.id)
		}
	})
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders a compact indented tree, for debugging and the hsfqctl
// tool.
func (s *Structure) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		name := n.name
		if n.parent == nil {
			name = "/"
		}
		fmt.Fprintf(&b, "%s (id=%d w=%g", name, n.id, n.weight)
		if n.IsLeaf() {
			fmt.Fprintf(&b, " leaf=%s threads=%d", n.leaf.Name(), len(n.threads))
		}
		if n.Runnable() {
			b.WriteString(" runnable")
		}
		b.WriteString(")\n")
		for _, c := range n.children {
			rec(c, depth+1)
		}
	}
	rec(s.root, 0)
	return b.String()
}

// Threads returns the threads attached to a leaf, sorted by ID.
func (s *Structure) Threads(id NodeID) ([]*sched.Thread, error) {
	n, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoNode, id)
	}
	if !n.IsLeaf() {
		return nil, fmt.Errorf("%w: %q", ErrNotLeaf, s.PathOf(id))
	}
	out := make([]*sched.Thread, 0, len(n.threads))
	for t := range n.threads {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Detach removes a blocked thread from the structure entirely.
func (s *Structure) Detach(t *sched.Thread) error {
	n, ok := s.byThread[t]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNoThread, t)
	}
	if t.State == sched.StateRunnable || t.State == sched.StateRunning {
		return fmt.Errorf("%w: %v", ErrThreadRunning, t)
	}
	delete(n.threads, t)
	delete(s.byThread, t)
	t.NodeSlot.Drop(s)
	return nil
}

// WriteScript emits the structure as an hsfqctl-style script of mknod and
// weight commands that rebuilds its shape (leaf schedulers are emitted by
// algorithm name; quanta are not recorded on the Scheduler interface and
// fall back to each algorithm's default).
func (s *Structure) WriteScript(w io.Writer) error {
	var b strings.Builder
	s.Walk(func(n *Node) {
		if n.parent == nil {
			return
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, "mknod %s %g %s\n", s.PathOf(n.id), n.weight, n.leaf.Name())
		} else {
			fmt.Fprintf(&b, "mknod %s %g\n", s.PathOf(n.id), n.weight)
		}
	})
	_, err := io.WriteString(w, b.String())
	return err
}
