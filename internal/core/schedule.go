package core

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// This file implements sched.Scheduler for Structure: the recursive
// hsfq_schedule walk, the hsfq_update tag propagation, and the
// hsfq_setrun / hsfq_sleep eligibility marking of §4.

var _ sched.Scheduler = (*Structure)(nil)

// nodeOf returns the leaf node t is attached to, consulting the byThread
// map only after a cache miss (first touch, or right after a Move changed
// the attachment). The steady-state Pick/Quantum/Charge cycle therefore
// performs no map lookups at this layer.
func (s *Structure) nodeOf(t *sched.Thread) *Node {
	if v, ok := t.NodeSlot.Get(s); ok {
		return v.(*Node)
	}
	if n := s.byThread[t]; n != nil {
		t.NodeSlot.Set(s, n)
		return n
	}
	return nil
}

// Name implements sched.Scheduler.
func (s *Structure) Name() string { return "hsfq" }

// Len implements sched.Scheduler: the number of runnable threads in the
// whole structure.
func (s *Structure) Len() int { return s.runnable }

// Enqueue implements sched.Scheduler. The thread joins its leaf's runnable
// set; if it is the first runnable thread of the leaf, the leaf — and any
// newly eligible ancestors — are marked runnable, the hsfq_setrun walk:
// "this function has to traverse the path from the leaf up the tree only
// until a node that is already runnable is found".
func (s *Structure) Enqueue(t *sched.Thread, now sim.Time) {
	n := s.nodeOf(t)
	if n == nil {
		panic(fmt.Sprintf("core: Enqueue of unattached thread %v", t))
	}
	wasRunnable := n.leaf.Len() > 0
	n.leaf.Enqueue(t, now)
	s.runnable++
	if !wasRunnable {
		s.setRun(n)
	}
}

// setRun marks n runnable and walks up while parents become newly
// eligible. A node (re)entering its parent's runnable set is stamped with
// S = max(v(parent), F): it cannot claim credit for time spent ineligible.
func (s *Structure) setRun(n *Node) {
	for n.parent != nil && n.heapIdx == -1 {
		p := n.parent
		wasRunnable := p.runq.Len() > 0
		n.start = sim.Maxf(p.VirtualTime(), n.finish)
		n.seq = s.seq
		s.seq++
		p.runq.Push(n)
		if wasRunnable {
			return
		}
		n = p
	}
}

// Remove implements sched.Scheduler: a runnable thread leaves the
// structure's runnable set without being charged (killed while waiting, or
// about to be moved). If it was the leaf's last runnable thread the
// hsfq_sleep walk marks ancestors ineligible: "this function has to
// traverse the path from the leaf only until a node that has more than one
// runnable child nodes is found".
func (s *Structure) Remove(t *sched.Thread, now sim.Time) {
	n := s.nodeOf(t)
	if n == nil {
		panic(fmt.Sprintf("core: Remove of unattached thread %v", t))
	}
	n.leaf.Remove(t, now)
	s.runnable--
	if n.leaf.Len() == 0 {
		s.sleep(n)
	}
}

// sleep removes n from its parent's runnable set and walks up while
// parents lose their last runnable child.
func (s *Structure) sleep(n *Node) {
	for n.parent != nil && n.heapIdx != -1 {
		p := n.parent
		p.runq.Remove(n.heapIdx)
		if p.runq.Len() > 0 {
			return
		}
		n = p
	}
}

// Pick implements sched.Scheduler, the hsfq_schedule walk: "traverses the
// scheduling structure by always selecting the child node with the
// smallest start tag until a leaf node is selected", then delegates to the
// leaf's scheduler-specific function to choose a thread.
func (s *Structure) Pick(now sim.Time) *sched.Thread {
	n := s.root
	for !n.IsLeaf() {
		if n.runq.Len() == 0 {
			if n == s.root {
				return nil
			}
			panic(fmt.Sprintf("core: runnable intermediate node %q with no runnable children", s.PathOf(n.id)))
		}
		n = n.runq.Min()
	}
	t := n.leaf.Pick(now)
	if t == nil {
		panic(fmt.Sprintf("core: runnable leaf %q picked no thread", s.PathOf(n.id)))
	}
	s.picked, s.pickedAt = t, n
	return t
}

// Quantum implements sched.Scheduler: the quantum is a property of the
// thread's leaf class.
func (s *Structure) Quantum(t *sched.Thread, now sim.Time) sim.Time {
	n := s.nodeOf(t)
	if n == nil {
		panic(fmt.Sprintf("core: Quantum of unattached thread %v", t))
	}
	return n.leaf.Quantum(t, now)
}

// Charge implements sched.Scheduler, the hsfq_update path: "when a thread
// blocks or is preempted, the finish and the start tags of all the
// ancestors of the node to which the thread belongs have to be updated ...
// with the duration for which the thread executed".
//
// For each node from the leaf to the root: F = S + used/weight (Eq. 2);
// if the node remains eligible its next quantum starts immediately, so
// S = max(v, F), which reduces to F because v equals the node's own start
// tag while it is in service and F >= S; if it became ineligible it
// leaves its parent's runnable heap (the hsfq_sleep case folded into the
// update).
func (s *Structure) Charge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	n := s.nodeOf(t)
	if n == nil {
		panic(fmt.Sprintf("core: Charge of unattached thread %v", t))
	}
	if s.picked != nil && (t != s.picked || n != s.pickedAt) {
		panic(fmt.Sprintf("core: Charge of %v but %v was picked", t, s.picked))
	}
	s.picked, s.pickedAt = nil, nil

	n.leaf.Charge(t, used, now, runnable)
	if !runnable {
		s.runnable--
	}

	stillRunnable := n.leaf.Len() > 0
	for n.parent != nil {
		p := n.parent
		n.finish = n.start + float64(used)/n.weight
		if n.finish > p.maxFinish {
			p.maxFinish = n.finish
		}
		if stillRunnable {
			if n.heapIdx == -1 {
				panic(fmt.Sprintf("core: charged node %q not on parent's runnable heap", s.PathOf(n.id)))
			}
			// S = max(v(t), F) with v(t) = this node's own start tag, and
			// F >= S because used >= 0: the max reduces to F.
			n.start = n.finish
			n.seq = s.seq
			s.seq++
			// A single-child runnable set (common on chain-shaped
			// hierarchies) cannot reorder; skip the sift entirely.
			if p.runq.Len() > 1 {
				p.runq.Fix(n.heapIdx)
			}
		} else if n.heapIdx != -1 {
			p.runq.Remove(n.heapIdx)
		}
		stillRunnable = p.runq.Len() > 0
		n = p
	}
}

// Preempts implements sched.Scheduler. Preemption is a leaf-local policy:
// if the woken thread shares the running thread's leaf, the leaf scheduler
// decides (EDF/RM/SVR4 preempt, SFQ does not); across leaves there is no
// preemption — the woken class gains the CPU at the next quantum boundary,
// which is what bounds Fig. 9's scheduling latency by the quantum length.
func (s *Structure) Preempts(running, woken *sched.Thread, now sim.Time) bool {
	rl := s.nodeOf(running)
	wl := s.nodeOf(woken)
	if rl == nil || wl == nil || rl != wl {
		return false
	}
	return rl.leaf.Preempts(running, woken, now)
}
