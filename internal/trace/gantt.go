package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hsfq/internal/sim"
)

// Gantt renders recorded run spans as an ASCII chart: one row per thread,
// one column per bucket of simulated time, '#' where the thread held the
// CPU for most of the bucket and '.' where it ran at all.
//
//	sensor  |##....##....##....
//	decoder |..####..####..####
func Gantt(w io.Writer, spans []RunSpan, from, to sim.Time, columns int) error {
	if columns < 1 {
		columns = 80
	}
	if to <= from {
		return fmt.Errorf("trace: empty gantt window [%v,%v]", from, to)
	}
	bucket := (to - from) / sim.Time(columns)
	if bucket < 1 {
		bucket = 1
	}

	// Stable thread order: by first appearance.
	var names []string
	index := map[string]int{}
	for _, sp := range spans {
		if _, ok := index[sp.Thread]; !ok {
			index[sp.Thread] = len(names)
			names = append(names, sp.Thread)
		}
	}
	if len(names) == 0 {
		_, err := io.WriteString(w, "(no spans)\n")
		return err
	}
	// occupancy[thread][col] = time the thread ran in that bucket.
	occ := make([][]sim.Time, len(names))
	for i := range occ {
		occ[i] = make([]sim.Time, columns)
	}
	for _, sp := range spans {
		lo, hi := sp.Start, sp.End
		if hi <= from || lo >= to {
			continue
		}
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		for t := lo; t < hi; {
			col := int((t - from) / bucket)
			if col >= columns {
				break
			}
			bucketEnd := from + sim.Time(col+1)*bucket
			seg := sim.MinTime(hi, bucketEnd) - t
			occ[index[sp.Thread]][col] += seg
			t += seg
		}
	}

	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var b strings.Builder
	for _, name := range sorted {
		row := occ[index[name]]
		fmt.Fprintf(&b, "%-*s |", width, name)
		for _, d := range row {
			switch {
			case d > bucket/2:
				b.WriteByte('#')
			case d > 0:
				b.WriteByte('.')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s +%s\n", width, "", strings.Repeat("-", columns))
	fmt.Fprintf(&b, "%-*s  %v%s%v\n", width, "", from, strings.Repeat(" ", maxInt(columns-len(from.String())-len(to.String()), 1)), to)
	_, err := io.WriteString(w, b.String())
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
