package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hsfq/internal/sim"
)

// Gantt renders recorded run spans as an ASCII chart: one row per thread,
// one column per bucket of simulated time, '#' where the thread held the
// CPU for most of the bucket and '.' where it ran at all.
//
//	sensor  |##....##....##....
//	decoder |..####..####..####
//
// Spans from a multicore machine (any span with Core > 0) are grouped
// into one lane per core, each lane holding the per-thread rows of the
// threads that ran there; a thread migrating between cores shows up in
// every lane it visited. Single-core output is unchanged.
func Gantt(w io.Writer, spans []RunSpan, from, to sim.Time, columns int) error {
	if columns < 1 {
		columns = 80
	}
	if to <= from {
		return fmt.Errorf("trace: empty gantt window [%v,%v]", from, to)
	}
	bucket := (to - from) / sim.Time(columns)
	if bucket < 1 {
		bucket = 1
	}
	if len(spans) == 0 {
		_, err := io.WriteString(w, "(no spans)\n")
		return err
	}
	maxCore := 0
	width := 0
	for _, sp := range spans {
		if sp.Core > maxCore {
			maxCore = sp.Core
		}
		if len(sp.Thread) > width {
			width = len(sp.Thread)
		}
	}

	var b strings.Builder
	if maxCore == 0 {
		ganttLane(&b, spans, from, to, bucket, columns, width)
	} else {
		byCore := make([][]RunSpan, maxCore+1)
		for _, sp := range spans {
			byCore[sp.Core] = append(byCore[sp.Core], sp)
		}
		for c, lane := range byCore {
			fmt.Fprintf(&b, "core %d\n", c)
			if len(lane) == 0 {
				fmt.Fprintf(&b, "%-*s |%s\n", width, "(idle)", strings.Repeat(" ", columns))
				continue
			}
			ganttLane(&b, lane, from, to, bucket, columns, width)
		}
	}
	fmt.Fprintf(&b, "%-*s +%s\n", width, "", strings.Repeat("-", columns))
	fmt.Fprintf(&b, "%-*s  %v%s%v\n", width, "", from, strings.Repeat(" ", maxInt(columns-len(from.String())-len(to.String()), 1)), to)
	_, err := io.WriteString(w, b.String())
	return err
}

// ganttLane renders one lane: the per-thread occupancy rows of the given
// spans, name-sorted, at a fixed label width.
func ganttLane(b *strings.Builder, spans []RunSpan, from, to, bucket sim.Time, columns, width int) {
	// Stable thread order: by first appearance.
	var names []string
	index := map[string]int{}
	for _, sp := range spans {
		if _, ok := index[sp.Thread]; !ok {
			index[sp.Thread] = len(names)
			names = append(names, sp.Thread)
		}
	}
	// occupancy[thread][col] = time the thread ran in that bucket.
	occ := make([][]sim.Time, len(names))
	for i := range occ {
		occ[i] = make([]sim.Time, columns)
	}
	for _, sp := range spans {
		lo, hi := sp.Start, sp.End
		if hi <= from || lo >= to {
			continue
		}
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		for t := lo; t < hi; {
			col := int((t - from) / bucket)
			if col >= columns {
				break
			}
			bucketEnd := from + sim.Time(col+1)*bucket
			seg := sim.MinTime(hi, bucketEnd) - t
			occ[index[sp.Thread]][col] += seg
			t += seg
		}
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, name := range sorted {
		row := occ[index[name]]
		fmt.Fprintf(b, "%-*s |", width, name)
		for _, d := range row {
			switch {
			case d > bucket/2:
				b.WriteByte('#')
			case d > 0:
				b.WriteByte('.')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
