// Package trace records scheduling events from a simulated machine for
// debugging, experiment output, and golden-trace tests such as the
// reproduction of the paper's Fig. 3 worked example.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Kind classifies a recorded event.
type Kind string

// Event kinds.
const (
	Dispatch  Kind = "dispatch"
	Charge    Kind = "charge"
	Wake      Kind = "wake"
	Block     Kind = "block"
	Exit      Kind = "exit"
	Interrupt Kind = "interrupt"
	Idle      Kind = "idle"
)

// Event is one scheduling event.
type Event struct {
	At       sim.Time   `json:"at"`
	Kind     Kind       `json:"kind"`
	Thread   string     `json:"thread,omitempty"`
	ThreadID int        `json:"tid,omitempty"`
	Used     sched.Work `json:"used,omitempty"`
	Runnable bool       `json:"runnable,omitempty"`
	Service  sim.Time   `json:"service,omitempty"`
	// Core is the core the event happened on. It is recorded (and emitted
	// in the CSV as an extra trailing column) only for multicore machines,
	// so single-core traces are byte-identical to the pre-SMP format.
	Core int `json:"core,omitempty"`
}

// Recorder implements cpu.Listener (and cpu.SMPListener, for core-tagged
// events from multicore machines) and stores events, optionally bounded
// to the most recent max events (0 = unbounded).
type Recorder struct {
	cpu.BaseListener
	max      int
	numCores int // >1 switches the CSV and checkpoint encodings to core-tagged rows
	events   []Event
	drops    int
}

// NewRecorder returns a recorder keeping at most max events; max <= 0
// keeps everything.
func NewRecorder(max int) *Recorder { return &Recorder{max: max, numCores: 1} }

// SetNumCores tells the recorder how many cores feed it. Machine.Listen
// calls it automatically; checkpoint restore calls it before LoadState so
// the decoder knows whether rows carry a core column. n > 1 adds a "core"
// column to WriteCSV and a core field to the checkpoint encoding; n <= 1
// keeps both byte-identical to the single-core format.
func (r *Recorder) SetNumCores(n int) {
	if n < 1 {
		n = 1
	}
	r.numCores = n
}

// NumCores returns the core count the recorder was configured for.
func (r *Recorder) NumCores() int { return r.numCores }

func (r *Recorder) add(e Event) {
	if r.max > 0 && len(r.events) >= r.max {
		copy(r.events, r.events[1:])
		r.events[len(r.events)-1] = e
		r.drops++
		return
	}
	r.events = append(r.events, e)
}

// OnDispatch implements cpu.Listener.
func (r *Recorder) OnDispatch(t *sched.Thread, now sim.Time) {
	r.add(Event{At: now, Kind: Dispatch, Thread: t.Name, ThreadID: t.ID})
}

// OnCharge implements cpu.Listener.
func (r *Recorder) OnCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	r.add(Event{At: now, Kind: Charge, Thread: t.Name, ThreadID: t.ID, Used: used, Runnable: runnable})
}

// OnWake implements cpu.Listener.
func (r *Recorder) OnWake(t *sched.Thread, now sim.Time) {
	r.add(Event{At: now, Kind: Wake, Thread: t.Name, ThreadID: t.ID})
}

// OnBlock implements cpu.Listener.
func (r *Recorder) OnBlock(t *sched.Thread, now sim.Time) {
	r.add(Event{At: now, Kind: Block, Thread: t.Name, ThreadID: t.ID})
}

// OnExit implements cpu.Listener.
func (r *Recorder) OnExit(t *sched.Thread, now sim.Time) {
	r.add(Event{At: now, Kind: Exit, Thread: t.Name, ThreadID: t.ID})
}

// OnInterrupt implements cpu.Listener.
func (r *Recorder) OnInterrupt(now, service sim.Time) {
	r.add(Event{At: now, Kind: Interrupt, Service: service})
}

// OnIdle implements cpu.Listener.
func (r *Recorder) OnIdle(now sim.Time) {
	r.add(Event{At: now, Kind: Idle})
}

// OnDispatchCore implements cpu.SMPListener.
func (r *Recorder) OnDispatchCore(core int, t *sched.Thread, now sim.Time) {
	r.add(Event{At: now, Kind: Dispatch, Thread: t.Name, ThreadID: t.ID, Core: core})
}

// OnChargeCore implements cpu.SMPListener.
func (r *Recorder) OnChargeCore(core int, t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	r.add(Event{At: now, Kind: Charge, Thread: t.Name, ThreadID: t.ID, Used: used, Runnable: runnable, Core: core})
}

// OnIdleCore implements cpu.SMPListener.
func (r *Recorder) OnIdleCore(core int, now sim.Time) {
	r.add(Event{At: now, Kind: Idle, Core: core})
}

// Events returns the recorded events, oldest first.
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped returns how many events were evicted from a bounded recorder.
func (r *Recorder) Dropped() int { return r.drops }

// Filter returns the events of the given kinds.
func (r *Recorder) Filter(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range r.events {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV emits the events as CSV with a header row. Recorders fed by a
// multicore machine append a trailing "core" column; the single-core
// format is unchanged.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"at_ns", "kind", "thread", "tid", "used", "runnable", "service_ns"}
	if r.numCores > 1 {
		header = append(header, "core")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range r.events {
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			string(e.Kind),
			e.Thread,
			strconv.Itoa(e.ThreadID),
			strconv.FormatInt(int64(e.Used), 10),
			strconv.FormatBool(e.Runnable),
			strconv.FormatInt(int64(e.Service), 10),
		}
		if r.numCores > 1 {
			rec = append(rec, strconv.Itoa(e.Core))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the events as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.events)
}

// AppendRow appends the canonical row text of one event — exactly the
// bytes Hasher folds into its stream digest, one line per event with a
// trailing core column only on multicore streams. Everything that claims
// two event streams are "equal" (hsfqdiff's replay comparison, the
// tracestream follow protocol, tracesmoke) renders rows through this one
// function, so digest equality and row equality can never drift apart.
func AppendRow(buf []byte, e Event, numCores int) []byte {
	buf = fmt.Appendf(buf, "%d,%s,%s,%d,%d,%t,%d",
		int64(e.At), e.Kind, e.Thread, e.ThreadID, int64(e.Used), e.Runnable, int64(e.Service))
	if numCores > 1 {
		buf = fmt.Appendf(buf, ",%d", e.Core)
	}
	return append(buf, '\n')
}

// RowText is AppendRow as a string, without the trailing newline — the
// display form of a single event in divergence reports.
func RowText(e Event, numCores int) string {
	b := AppendRow(nil, e, numCores)
	return string(b[:len(b)-1])
}

// ThreadMeta describes one thread's place in the scheduling tree, the
// sideband a trace stream carries so renderers can lay events out by
// hierarchy depth without access to the original config.
type ThreadMeta struct {
	// TID matches Event.ThreadID.
	TID int `json:"tid"`
	// Name matches Event.Thread.
	Name string `json:"name"`
	// Depth is the thread's depth in the scheduling tree: the number of
	// path segments of the leaf it is attached to (a thread on "/soft"
	// has depth 1, on "/be/user1" depth 2). The root scheduler is depth 0.
	Depth int `json:"depth"`
	// Path is the leaf the thread is attached to, e.g. "/soft".
	Path string `json:"path,omitempty"`
}

// RunSpans folds dispatch/charge pairs into (thread, start, end) spans —
// the Gantt view of the schedule.
type RunSpan struct {
	Thread string
	TID    int
	Start  sim.Time
	End    sim.Time
	Used   sched.Work
	Core   int
}

// Spans extracts run spans from the recorded events.
func (r *Recorder) Spans() []RunSpan { return SpansOf(r.events) }

// SpansOf folds an event sequence into run spans. A span opens at a
// dispatch and closes at the next charge of the same thread; interrupts in
// between lengthen the span's wall time, not its Used work. A thread runs
// on at most one core at a time, so keying open spans by thread is sound
// on multicore traces too.
func SpansOf(events []Event) []RunSpan {
	var out []RunSpan
	open := make(map[int]*RunSpan)
	for _, e := range events {
		switch e.Kind {
		case Dispatch:
			open[e.ThreadID] = &RunSpan{Thread: e.Thread, TID: e.ThreadID, Start: e.At, Core: e.Core}
		case Charge:
			if sp, ok := open[e.ThreadID]; ok {
				sp.End = e.At
				sp.Used = e.Used
				out = append(out, *sp)
				delete(open, e.ThreadID)
			}
		}
	}
	return out
}

// FormatSpans renders spans compactly: "name[start-end]".
func FormatSpans(spans []RunSpan) string {
	var b []byte
	for i, sp := range spans {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s[%v-%v]", sp.Thread, sp.Start, sp.End)...)
	}
	return string(b)
}
