package trace

import (
	"strings"
	"testing"

	"hsfq/internal/sim"
)

func depthMeta() []ThreadMeta {
	return []ThreadMeta{
		{TID: 1, Name: "dec", Depth: 1, Path: "/soft"},
		{TID: 2, Name: "hog", Depth: 2, Path: "/be/user1"},
		{TID: 3, Name: "make", Depth: 2, Path: "/be/user2"},
	}
}

func depthSpans() []RunSpan {
	return []RunSpan{
		{Thread: "dec", TID: 1, Start: 0, End: 40 * sim.Millisecond, Used: 100},
		{Thread: "hog", TID: 2, Start: 40 * sim.Millisecond, End: 70 * sim.Millisecond, Used: 60},
		{Thread: "make", TID: 3, Start: 70 * sim.Millisecond, End: 100 * sim.Millisecond, Used: 60},
		{Thread: "dec", TID: 1, Start: 100 * sim.Millisecond, End: 140 * sim.Millisecond, Used: 100},
	}
}

func TestGanttByDepthLanes(t *testing.T) {
	var b strings.Builder
	err := GanttByDepth(&b, depthSpans(), depthMeta(), 0, 140*sim.Millisecond, 28)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	i1 := strings.Index(out, "depth 1 (/soft)")
	i2 := strings.Index(out, "depth 2 (/be/user1, /be/user2)")
	if i1 < 0 || i2 < 0 {
		t.Fatalf("missing depth lane headers in:\n%s", out)
	}
	if i1 > i2 {
		t.Fatalf("depth 1 lane should precede depth 2:\n%s", out)
	}
	// dec is in the depth-1 lane, hog and make in depth 2.
	lane1, lane2 := out[i1:i2], out[i2:]
	if !strings.Contains(lane1, "dec") || strings.Contains(lane1, "hog") {
		t.Fatalf("depth 1 lane has wrong threads:\n%s", out)
	}
	if !strings.Contains(lane2, "hog") || !strings.Contains(lane2, "make") || strings.Contains(lane2[len("depth 2"):], "dec ") {
		t.Fatalf("depth 2 lane has wrong threads:\n%s", out)
	}
}

func TestGanttByDepthUnknownTID(t *testing.T) {
	spans := []RunSpan{{Thread: "ghost", TID: 99, Start: 0, End: sim.Millisecond, Used: 1}}
	var b strings.Builder
	if err := GanttByDepth(&b, spans, depthMeta(), 0, sim.Millisecond, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "depth ?") || !strings.Contains(b.String(), "ghost") {
		t.Fatalf("unknown-TID spans should land in a 'depth ?' lane:\n%s", b.String())
	}
}

func TestGanttByDepthEmpty(t *testing.T) {
	var b strings.Builder
	if err := GanttByDepth(&b, nil, nil, 0, sim.Second, 10); err != nil {
		t.Fatal(err)
	}
	if b.String() != "(no spans)\n" {
		t.Fatalf("got %q", b.String())
	}
	if err := GanttByDepth(&b, depthSpans(), nil, sim.Second, sim.Second, 10); err == nil {
		t.Fatal("empty window should error")
	}
}

func TestBuildTimeline(t *testing.T) {
	tl := BuildTimeline(depthSpans(), depthMeta(), 0, 140*sim.Millisecond, 1)
	if tl.FromNs != 0 || tl.ToNs != int64(140*sim.Millisecond) || tl.NumCores != 1 {
		t.Fatalf("bad window: %+v", tl)
	}
	if len(tl.Lanes) != 2 {
		t.Fatalf("want 2 lanes, got %d", len(tl.Lanes))
	}
	if tl.Lanes[0].Depth != 1 || tl.Lanes[1].Depth != 2 {
		t.Fatalf("lane depths: %d, %d", tl.Lanes[0].Depth, tl.Lanes[1].Depth)
	}
	if len(tl.Lanes[0].Threads) != 1 || tl.Lanes[0].Threads[0].Name != "dec" {
		t.Fatalf("depth-1 lane: %+v", tl.Lanes[0])
	}
	dec := tl.Lanes[0].Threads[0]
	if len(dec.Spans) != 2 || dec.Spans[0].StartNs != 0 || dec.Spans[1].EndNs != int64(140*sim.Millisecond) {
		t.Fatalf("dec spans: %+v", dec.Spans)
	}
	if dec.Path != "/soft" {
		t.Fatalf("dec path: %q", dec.Path)
	}
	// Threads within a lane sort by first dispatch: hog ran before make.
	d2 := tl.Lanes[1].Threads
	if len(d2) != 2 || d2[0].Name != "hog" || d2[1].Name != "make" {
		t.Fatalf("depth-2 lane order: %+v", d2)
	}
}

func TestBuildTimelineUnknownDepthLast(t *testing.T) {
	spans := append(depthSpans(), RunSpan{Thread: "ghost", TID: 99, Start: 0, End: sim.Millisecond})
	tl := BuildTimeline(spans, depthMeta(), 0, 140*sim.Millisecond, 1)
	last := tl.Lanes[len(tl.Lanes)-1]
	if last.Depth != -1 || len(last.Threads) != 1 || last.Threads[0].Name != "ghost" {
		t.Fatalf("unknown-depth lane should be last: %+v", tl.Lanes)
	}
}

func TestDepthFromPath(t *testing.T) {
	for path, want := range map[string]int{
		"": 0, "/": 0, "/soft": 1, "/be/user1": 2, "/a/b/c": 3, "be/user1": 2,
	} {
		if got := DepthFromPath(path); got != want {
			t.Errorf("DepthFromPath(%q) = %d, want %d", path, got, want)
		}
	}
}

func TestRowTextMatchesHasherFormat(t *testing.T) {
	e := Event{At: 5, Kind: Charge, Thread: "dec", ThreadID: 1, Used: 7, Runnable: true, Service: 0}
	if got, want := RowText(e, 1), "5,charge,dec,1,7,true,0"; got != want {
		t.Fatalf("RowText single-core = %q, want %q", got, want)
	}
	e.Core = 2
	if got, want := RowText(e, 4), "5,charge,dec,1,7,true,0,2"; got != want {
		t.Fatalf("RowText multi-core = %q, want %q", got, want)
	}
	if got := AppendRow(nil, e, 1); string(got) != "5,charge,dec,1,7,true,0\n" {
		t.Fatalf("AppendRow = %q", got)
	}
}
