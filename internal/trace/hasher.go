package trace

import (
	"crypto/sha256"
	"fmt"
	"hash"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Hasher is a cpu.Listener that folds every scheduling event into a
// streaming SHA-256 instead of storing it. hsfqdiff uses it to compare
// two runs' event streams without holding either in memory, and to grab
// prefix digests at checkpoint instants: Sum does not disturb the
// running state, so the digest of the stream so far can be sampled at
// any event boundary.
type Hasher struct {
	cpu.BaseListener
	h        hash.Hash
	numCores int
	rows     int
	buf      []byte
}

// NewHasher returns an empty stream hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New(), numCores: 1} }

// SetNumCores tells the hasher how many cores feed it; Machine.Listen
// calls it automatically. Rows from a multicore machine gain a trailing
// core field, so single-core digests are unchanged.
func (s *Hasher) SetNumCores(n int) {
	if n < 1 {
		n = 1
	}
	s.numCores = n
}

func (s *Hasher) row(at sim.Time, kind Kind, thread string, tid int, used sched.Work, runnable bool, service sim.Time) {
	s.coreRow(0, at, kind, thread, tid, used, runnable, service)
}

func (s *Hasher) coreRow(core int, at sim.Time, kind Kind, thread string, tid int, used sched.Work, runnable bool, service sim.Time) {
	s.buf = AppendRow(s.buf[:0], Event{
		At: at, Kind: kind, Thread: thread, ThreadID: tid,
		Used: used, Runnable: runnable, Service: service, Core: core,
	}, s.numCores)
	s.h.Write(s.buf)
	s.rows++
}

// OnDispatch implements cpu.Listener.
func (s *Hasher) OnDispatch(t *sched.Thread, now sim.Time) {
	s.row(now, Dispatch, t.Name, t.ID, 0, false, 0)
}

// OnCharge implements cpu.Listener.
func (s *Hasher) OnCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	s.row(now, Charge, t.Name, t.ID, used, runnable, 0)
}

// OnWake implements cpu.Listener.
func (s *Hasher) OnWake(t *sched.Thread, now sim.Time) {
	s.row(now, Wake, t.Name, t.ID, 0, false, 0)
}

// OnBlock implements cpu.Listener.
func (s *Hasher) OnBlock(t *sched.Thread, now sim.Time) {
	s.row(now, Block, t.Name, t.ID, 0, false, 0)
}

// OnExit implements cpu.Listener.
func (s *Hasher) OnExit(t *sched.Thread, now sim.Time) {
	s.row(now, Exit, t.Name, t.ID, 0, false, 0)
}

// OnInterrupt implements cpu.Listener.
func (s *Hasher) OnInterrupt(now, service sim.Time) {
	s.row(now, Interrupt, "", 0, 0, false, service)
}

// OnIdle implements cpu.Listener.
func (s *Hasher) OnIdle(now sim.Time) {
	s.row(now, Idle, "", 0, 0, false, 0)
}

// OnDispatchCore implements cpu.SMPListener.
func (s *Hasher) OnDispatchCore(core int, t *sched.Thread, now sim.Time) {
	s.coreRow(core, now, Dispatch, t.Name, t.ID, 0, false, 0)
}

// OnChargeCore implements cpu.SMPListener.
func (s *Hasher) OnChargeCore(core int, t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	s.coreRow(core, now, Charge, t.Name, t.ID, used, runnable, 0)
}

// OnIdleCore implements cpu.SMPListener.
func (s *Hasher) OnIdleCore(core int, now sim.Time) {
	s.coreRow(core, now, Idle, "", 0, 0, false, 0)
}

// Rows returns how many events have been hashed.
func (s *Hasher) Rows() int { return s.rows }

// Sum returns the hex digest of the stream so far without disturbing the
// running state.
func (s *Hasher) Sum() string {
	return fmt.Sprintf("%x", s.h.Sum(nil))
}
