package trace

import (
	"crypto/sha256"
	"fmt"
	"hash"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// Hasher is a cpu.Listener that folds every scheduling event into a
// streaming SHA-256 instead of storing it. hsfqdiff uses it to compare
// two runs' event streams without holding either in memory, and to grab
// prefix digests at checkpoint instants: Sum does not disturb the
// running state, so the digest of the stream so far can be sampled at
// any event boundary.
type Hasher struct {
	cpu.BaseListener
	h    hash.Hash
	rows int
	buf  []byte
}

// NewHasher returns an empty stream hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (s *Hasher) row(at sim.Time, kind Kind, thread string, tid int, used sched.Work, runnable bool, service sim.Time) {
	s.buf = s.buf[:0]
	s.buf = fmt.Appendf(s.buf, "%d,%s,%s,%d,%d,%t,%d\n", int64(at), kind, thread, tid, int64(used), runnable, int64(service))
	s.h.Write(s.buf)
	s.rows++
}

// OnDispatch implements cpu.Listener.
func (s *Hasher) OnDispatch(t *sched.Thread, now sim.Time) {
	s.row(now, Dispatch, t.Name, t.ID, 0, false, 0)
}

// OnCharge implements cpu.Listener.
func (s *Hasher) OnCharge(t *sched.Thread, used sched.Work, now sim.Time, runnable bool) {
	s.row(now, Charge, t.Name, t.ID, used, runnable, 0)
}

// OnWake implements cpu.Listener.
func (s *Hasher) OnWake(t *sched.Thread, now sim.Time) {
	s.row(now, Wake, t.Name, t.ID, 0, false, 0)
}

// OnBlock implements cpu.Listener.
func (s *Hasher) OnBlock(t *sched.Thread, now sim.Time) {
	s.row(now, Block, t.Name, t.ID, 0, false, 0)
}

// OnExit implements cpu.Listener.
func (s *Hasher) OnExit(t *sched.Thread, now sim.Time) {
	s.row(now, Exit, t.Name, t.ID, 0, false, 0)
}

// OnInterrupt implements cpu.Listener.
func (s *Hasher) OnInterrupt(now, service sim.Time) {
	s.row(now, Interrupt, "", 0, 0, false, service)
}

// OnIdle implements cpu.Listener.
func (s *Hasher) OnIdle(now sim.Time) {
	s.row(now, Idle, "", 0, 0, false, 0)
}

// Rows returns how many events have been hashed.
func (s *Hasher) Rows() int { return s.rows }

// Sum returns the hex digest of the stream so far without disturbing the
// running state.
func (s *Hasher) Sum() string {
	return fmt.Sprintf("%x", s.h.Sum(nil))
}
