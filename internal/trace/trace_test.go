package trace

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func sampleRecorder() (*Recorder, *sched.Thread) {
	r := NewRecorder(0)
	t1 := sched.NewThread(1, "worker", 1)
	r.OnWake(t1, 0)
	r.OnDispatch(t1, 5)
	r.OnInterrupt(7, 2)
	r.OnCharge(t1, 1000, 15, true)
	r.OnDispatch(t1, 15)
	r.OnCharge(t1, 500, 20, false)
	r.OnBlock(t1, 20)
	r.OnIdle(20)
	r.OnExit(t1, 30)
	return r, t1
}

func TestRecorderEventsAndFilter(t *testing.T) {
	r, _ := sampleRecorder()
	evs := r.Events()
	if len(evs) != 9 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Kind != Wake || evs[8].Kind != Exit {
		t.Errorf("event order wrong: %v ... %v", evs[0].Kind, evs[8].Kind)
	}
	charges := r.Filter(Charge)
	if len(charges) != 2 || charges[0].Used != 1000 || !charges[0].Runnable || charges[1].Runnable {
		t.Errorf("charges %+v", charges)
	}
	both := r.Filter(Dispatch, Charge)
	if len(both) != 4 {
		t.Errorf("filter pair got %d", len(both))
	}
}

func TestRecorderBounded(t *testing.T) {
	r := NewRecorder(3)
	th := sched.NewThread(1, "t", 1)
	for i := 0; i < 10; i++ {
		r.OnDispatch(th, sim.Time(i))
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events kept", len(evs))
	}
	if evs[0].At != 7 || evs[2].At != 9 {
		t.Errorf("kept wrong window: %v", evs)
	}
	if r.Dropped() != 7 {
		t.Errorf("dropped %d", r.Dropped())
	}
}

func TestSpans(t *testing.T) {
	r, _ := sampleRecorder()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans %v", spans)
	}
	if spans[0].Start != 5 || spans[0].End != 15 || spans[0].Used != 1000 {
		t.Errorf("span 0 %+v", spans[0])
	}
	if spans[1].Start != 15 || spans[1].End != 20 || spans[1].Used != 500 {
		t.Errorf("span 1 %+v", spans[1])
	}
	s := FormatSpans(spans)
	if !strings.Contains(s, "worker[5ns-15ns]") {
		t.Errorf("formatted %q", s)
	}
}

func TestWriteCSV(t *testing.T) {
	r, _ := sampleRecorder()
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d CSV rows", len(rows))
	}
	if rows[0][0] != "at_ns" || rows[0][1] != "kind" {
		t.Errorf("header %v", rows[0])
	}
	if rows[1][1] != "wake" || rows[1][2] != "worker" {
		t.Errorf("first row %v", rows[1])
	}
}

func TestWriteJSON(t *testing.T) {
	r, _ := sampleRecorder()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(b.String()), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 9 || evs[3].Used != 1000 {
		t.Errorf("decoded %d events, evs[3]=%+v", len(evs), evs[3])
	}
}

// TestRecorderOnMachine wires the recorder to a real machine run and
// checks the event stream is self-consistent.
func TestRecorderOnMachine(t *testing.T) {
	eng := sim.NewEngine()
	m := cpu.NewMachine(eng, 1000, sched.NewSFQ(10*sim.Millisecond))
	r := NewRecorder(0)
	m.Listen(r)
	m.Spawn("a", 1, cpu.Sequence(cpu.Compute(25), cpu.Sleep(5*sim.Millisecond), cpu.Compute(5), cpu.Exit()), 0)
	m.Run(sim.Second)

	spans := r.Spans()
	var total sched.Work
	for _, sp := range spans {
		if sp.End < sp.Start {
			t.Errorf("span %+v inverted", sp)
		}
		total += sp.Used
	}
	if total != 30 {
		t.Errorf("total span work %d, want 30", total)
	}
	if got := r.Filter(Exit); len(got) != 1 {
		t.Errorf("exit events %d", len(got))
	}
	if got := r.Filter(Block); len(got) != 1 {
		t.Errorf("block events %d", len(got))
	}
	if got := r.Filter(Wake); len(got) != 2 {
		t.Errorf("wake events %d (spawn + sleep return)", len(got))
	}
}
