package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hsfq/internal/sim"
)

// This file is the hierarchy-aware timeline view of a trace: the
// schedsi-style Gantt variant that puts scheduling-tree depth on the
// vertical axis (one lane per depth level, one row per thread inside its
// lane) instead of one flat row per thread. It exists in two renderings:
// GanttByDepth draws ASCII for terminals, and BuildTimeline produces the
// JSON document hsfqd's trace endpoint serves (and embeds into the
// self-contained ?view=gantt HTML page).

// GanttByDepth renders run spans as an ASCII chart grouped into one lane
// per scheduling-tree depth, shallowest first:
//
//	depth 1 (/soft)
//	dec |##..##..
//	depth 2 (/be/user1)
//	hog |..##..##
//
// meta maps thread IDs to their tree position; threads without an entry
// land in a trailing "depth ?" lane rather than being dropped.
func GanttByDepth(w io.Writer, spans []RunSpan, meta []ThreadMeta, from, to sim.Time, columns int) error {
	if columns < 1 {
		columns = 80
	}
	if to <= from {
		return fmt.Errorf("trace: empty gantt window [%v,%v]", from, to)
	}
	bucket := (to - from) / sim.Time(columns)
	if bucket < 1 {
		bucket = 1
	}
	if len(spans) == 0 {
		_, err := io.WriteString(w, "(no spans)\n")
		return err
	}
	byTID := metaByTID(meta)
	const unknownDepth = 1 << 30
	depthOf := func(tid int) int {
		if m, ok := byTID[tid]; ok {
			return m.Depth
		}
		return unknownDepth
	}
	width := 0
	lanes := map[int][]RunSpan{}
	var depths []int
	for _, sp := range spans {
		d := depthOf(sp.TID)
		if _, ok := lanes[d]; !ok {
			depths = append(depths, d)
		}
		lanes[d] = append(lanes[d], sp)
		if len(sp.Thread) > width {
			width = len(sp.Thread)
		}
	}
	sort.Ints(depths)

	var b strings.Builder
	for _, d := range depths {
		if d == unknownDepth {
			fmt.Fprintf(&b, "depth ?\n")
		} else {
			fmt.Fprintf(&b, "depth %d%s\n", d, lanePaths(lanes[d], byTID))
		}
		ganttLane(&b, lanes[d], from, to, bucket, columns, width)
	}
	fmt.Fprintf(&b, "%-*s +%s\n", width, "", strings.Repeat("-", columns))
	fmt.Fprintf(&b, "%-*s  %v%s%v\n", width, "", from, strings.Repeat(" ", maxInt(columns-len(from.String())-len(to.String()), 1)), to)
	_, err := io.WriteString(w, b.String())
	return err
}

// lanePaths summarizes the distinct leaf paths feeding one depth lane,
// e.g. " (/be/user1, /be/user2)"; empty when no span has a path.
func lanePaths(spans []RunSpan, byTID map[int]ThreadMeta) string {
	seen := map[string]bool{}
	var paths []string
	for _, sp := range spans {
		if m, ok := byTID[sp.TID]; ok && m.Path != "" && !seen[m.Path] {
			seen[m.Path] = true
			paths = append(paths, m.Path)
		}
	}
	if len(paths) == 0 {
		return ""
	}
	sort.Strings(paths)
	return " (" + strings.Join(paths, ", ") + ")"
}

func metaByTID(meta []ThreadMeta) map[int]ThreadMeta {
	byTID := make(map[int]ThreadMeta, len(meta))
	for _, m := range meta {
		byTID[m.TID] = m
	}
	return byTID
}

// DepthFromPath computes a ThreadMeta depth from a leaf path: the number
// of non-empty '/'-separated segments ("/soft" is 1, "/be/user1" is 2,
// "/" or "" is 0 — the root itself).
func DepthFromPath(path string) int {
	n := 0
	for _, seg := range strings.Split(path, "/") {
		if seg != "" {
			n++
		}
	}
	return n
}

// Timeline is the JSON timeline document: run spans grouped by
// scheduling-tree depth, ready for a renderer that puts depth on the
// vertical axis. Times are nanoseconds.
type Timeline struct {
	FromNs   int64          `json:"from_ns"`
	ToNs     int64          `json:"to_ns"`
	NumCores int            `json:"num_cores"`
	Lanes    []TimelineLane `json:"lanes"`
}

// TimelineLane is one depth level of the tree.
type TimelineLane struct {
	Depth   int              `json:"depth"`
	Threads []TimelineThread `json:"threads"`
}

// TimelineThread is one thread's row: its tree position plus its run
// spans, in time order.
type TimelineThread struct {
	Name  string         `json:"name"`
	TID   int            `json:"tid"`
	Path  string         `json:"path,omitempty"`
	Spans []TimelineSpan `json:"spans"`
}

// TimelineSpan is one contiguous stretch of CPU occupancy.
type TimelineSpan struct {
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	Used    int64 `json:"used"`
	Core    int   `json:"core,omitempty"`
}

// BuildTimeline folds run spans into the depth-grouped timeline document.
// Threads without metadata get depth -1 (rendered last); lanes are sorted
// by depth, threads within a lane by first dispatch.
func BuildTimeline(spans []RunSpan, meta []ThreadMeta, from, to sim.Time, numCores int) Timeline {
	byTID := metaByTID(meta)
	type row struct {
		t     TimelineThread
		depth int
		first int64
	}
	rows := map[int]*row{}
	var order []int
	for _, sp := range spans {
		r, ok := rows[sp.TID]
		if !ok {
			depth := -1
			path := ""
			if m, mok := byTID[sp.TID]; mok {
				depth, path = m.Depth, m.Path
			}
			r = &row{
				t:     TimelineThread{Name: sp.Thread, TID: sp.TID, Path: path},
				depth: depth,
				first: int64(sp.Start),
			}
			rows[sp.TID] = r
			order = append(order, sp.TID)
		}
		r.t.Spans = append(r.t.Spans, TimelineSpan{
			StartNs: int64(sp.Start), EndNs: int64(sp.End), Used: int64(sp.Used), Core: sp.Core,
		})
	}
	laneRows := map[int][]*row{}
	var depths []int
	for _, tid := range order {
		r := rows[tid]
		if _, ok := laneRows[r.depth]; !ok {
			depths = append(depths, r.depth)
		}
		laneRows[r.depth] = append(laneRows[r.depth], r)
	}
	// Unknown-depth (-1) threads sort to the end, known depths ascending.
	sort.Slice(depths, func(i, j int) bool {
		di, dj := depths[i], depths[j]
		if (di == -1) != (dj == -1) {
			return dj == -1
		}
		return di < dj
	})
	tl := Timeline{FromNs: int64(from), ToNs: int64(to), NumCores: numCores}
	for _, d := range depths {
		rs := laneRows[d]
		sort.Slice(rs, func(i, j int) bool { return rs[i].first < rs[j].first })
		lane := TimelineLane{Depth: d}
		for _, r := range rs {
			lane.Threads = append(lane.Threads, r.t)
		}
		tl.Lanes = append(tl.Lanes, lane)
	}
	return tl
}
