package trace

import (
	"strings"
	"testing"

	"hsfq/internal/sim"
)

func TestGanttRendersRows(t *testing.T) {
	spans := []RunSpan{
		{Thread: "a", TID: 1, Start: 0, End: 500 * sim.Millisecond},
		{Thread: "b", TID: 2, Start: 500 * sim.Millisecond, End: sim.Second},
	}
	var buf strings.Builder
	if err := Gantt(&buf, spans, 0, sim.Second, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // two rows + axis + labels
		t.Fatalf("lines:\n%s", out)
	}
	// a occupies the first half, b the second.
	if !strings.HasPrefix(lines[0], "a |#####     ") && !strings.Contains(lines[0], "#####") {
		t.Errorf("row a: %q", lines[0])
	}
	aRow := lines[0][strings.Index(lines[0], "|")+1:]
	bRow := lines[1][strings.Index(lines[1], "|")+1:]
	if aRow[:5] != "#####" || strings.TrimSpace(aRow[5:]) != "" {
		t.Errorf("a row %q", aRow)
	}
	if bRow[5:] != "#####" || strings.TrimSpace(bRow[:5]) != "" {
		t.Errorf("b row %q", bRow)
	}
}

func TestGanttPartialOccupancy(t *testing.T) {
	// A thread running 20% of each bucket renders '.'.
	var spans []RunSpan
	for i := 0; i < 10; i++ {
		start := sim.Time(i) * 100 * sim.Millisecond
		spans = append(spans, RunSpan{Thread: "x", Start: start, End: start + 20*sim.Millisecond})
	}
	var buf strings.Builder
	if err := Gantt(&buf, spans, 0, sim.Second, 10); err != nil {
		t.Fatal(err)
	}
	row := strings.Split(buf.String(), "\n")[0]
	cells := row[strings.Index(row, "|")+1:]
	if cells != ".........." {
		t.Errorf("cells %q", cells)
	}
}

// TestGanttZeroLengthSpans: a span with Start == End carries no occupancy
// but still claims a row; rendering must neither loop nor mark a cell.
func TestGanttZeroLengthSpans(t *testing.T) {
	spans := []RunSpan{
		{Thread: "z", Start: 500 * sim.Millisecond, End: 500 * sim.Millisecond},
		{Thread: "z", Start: 0, End: 0},
		{Thread: "a", Start: 0, End: sim.Second},
	}
	var buf strings.Builder
	if err := Gantt(&buf, spans, 0, sim.Second, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // rows a, z + axis + labels
		t.Fatalf("lines:\n%s", buf.String())
	}
	aRow := lines[0][strings.Index(lines[0], "|")+1:]
	zRow := lines[1][strings.Index(lines[1], "|")+1:]
	if aRow != "##########" {
		t.Errorf("full-occupancy row %q", aRow)
	}
	if strings.TrimSpace(zRow) != "" {
		t.Errorf("zero-length spans rendered cells: %q", zRow)
	}
}

// TestGanttMultiCoreZeroMigration: threads that never migrate each
// appear in exactly one core lane, and a core with no spans renders an
// explicit idle row.
func TestGanttMultiCoreZeroMigration(t *testing.T) {
	spans := []RunSpan{
		{Thread: "a", TID: 1, Core: 0, Start: 0, End: sim.Second},
		{Thread: "b", TID: 2, Core: 2, Start: 0, End: 500 * sim.Millisecond},
	}
	var buf strings.Builder
	if err := Gantt(&buf, spans, 0, sim.Second, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		"core 0",
		"a |##########",
		"core 1",
		"(idle) |          ",
		"core 2",
		"b |#####     ",
	}
	if len(lines) != len(want)+2 { // lanes + axis + labels
		t.Fatalf("lines:\n%s", buf.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d: got %q, want %q", i, lines[i], w)
		}
	}
	if !strings.HasPrefix(lines[len(want)], "  +----------") {
		t.Errorf("axis line %q", lines[len(want)])
	}
}

// TestGanttMultiCoreMigrationHeavy: a thread ping-ponging between cores
// shows up in every lane it visited, with its occupancy split across
// them, while a pinned thread stays whole in its home lane.
func TestGanttMultiCoreMigrationHeavy(t *testing.T) {
	q := 250 * sim.Millisecond
	spans := []RunSpan{
		{Thread: "p", TID: 1, Core: 0, Start: 0, End: sim.Second},
		{Thread: "m", TID: 2, Core: 0, Start: 0, End: q},
		{Thread: "m", TID: 2, Core: 1, Start: q, End: 2 * q},
		{Thread: "m", TID: 2, Core: 0, Start: 2 * q, End: 3 * q},
		{Thread: "m", TID: 2, Core: 1, Start: 3 * q, End: 4 * q},
	}
	var buf strings.Builder
	if err := Gantt(&buf, spans, 0, sim.Second, 8); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		"core 0",
		"m |##  ##  ",
		"p |########",
		"core 1",
		"m |  ##  ##",
	}
	if len(lines) != len(want)+2 {
		t.Fatalf("lines:\n%s", buf.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d: got %q, want %q", i, lines[i], w)
		}
	}
}

func TestGanttEdgeCases(t *testing.T) {
	var buf strings.Builder
	if err := Gantt(&buf, nil, 0, sim.Second, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Error("empty gantt output")
	}
	if err := Gantt(&buf, nil, sim.Second, 0, 10); err == nil {
		t.Error("inverted window accepted")
	}
	// Spans outside the window are clipped away.
	buf.Reset()
	spans := []RunSpan{{Thread: "x", Start: 2 * sim.Second, End: 3 * sim.Second}}
	if err := Gantt(&buf, spans, 0, sim.Second, 10); err != nil {
		t.Fatal(err)
	}
	row := strings.Split(buf.String(), "\n")[0]
	if strings.ContainsAny(row[strings.Index(row, "|")+1:], "#.") {
		t.Errorf("out-of-window span rendered: %q", row)
	}
}
