package trace

import (
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// SaveState captures the recorder's event log so a resumed run emits the
// FULL trace of the logical run, not just the tail after the restore
// point — the property the checkpoint smoke test byte-compares. A
// recorder fed by a multicore machine (numCores > 1) appends each event's
// core; the single-core encoding is byte-identical to the pre-SMP format,
// and the decoder learns the layout from SetNumCores, which checkpoint
// restore derives from the rebuilt config before calling LoadState.
func (r *Recorder) SaveState(e *sim.Enc) {
	e.Int(r.drops)
	e.Int(len(r.events))
	for _, ev := range r.events {
		e.Time(ev.At)
		e.Str(string(ev.Kind))
		e.Str(ev.Thread)
		e.Int(ev.ThreadID)
		e.I64(int64(ev.Used))
		e.Bool(ev.Runnable)
		e.Time(ev.Service)
		if r.numCores > 1 {
			e.Int(ev.Core)
		}
	}
}

// LoadState restores an event log saved by SaveState. The recorder must
// be empty (freshly built).
func (r *Recorder) LoadState(d *sim.Dec) error {
	if len(r.events) != 0 {
		return fmt.Errorf("trace: LoadState into a recorder with events")
	}
	drops := d.Int()
	n := d.Count(35)
	if err := d.Err(); err != nil {
		return err
	}
	if drops < 0 {
		return fmt.Errorf("trace: negative drop count %d", drops)
	}
	if r.max > 0 && n > r.max {
		return fmt.Errorf("trace: checkpoint holds %d events but recorder is bounded to %d", n, r.max)
	}
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		ev := Event{
			At:       d.Time(),
			Kind:     Kind(d.Str()),
			Thread:   d.Str(),
			ThreadID: d.Int(),
			Used:     sched.Work(d.I64()),
			Runnable: d.Bool(),
			Service:  d.Time(),
		}
		if r.numCores > 1 {
			ev.Core = d.Int()
			if d.Err() == nil && (ev.Core < 0 || ev.Core >= r.numCores) {
				return fmt.Errorf("trace: event on core %d of a %d-core machine", ev.Core, r.numCores)
			}
		}
		if err := d.Err(); err != nil {
			return err
		}
		events = append(events, ev)
	}
	r.drops = drops
	r.events = events
	return nil
}
