package sweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"hsfq/internal/simconfig"
)

// FuzzJobKey checks the content-address invariants the caching and
// dispatch layers build on, for arbitrary parseable configs:
//
//   - a key is always a 64-char lowercase hex SHA-256;
//   - equal computations get equal keys: marshaling the config and
//     re-parsing it (the exact round trip a job takes over hsfqd's wire)
//     must not change its key;
//   - the seed participates: the same config at another seed is another
//     computation, hence another key.
//
// A violation in any of these would let hsfqd's cache serve the wrong
// result for a request, or hsfqmesh's HTTP backend reject every response.
func FuzzJobKey(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"rate_mips": 100}`,
		`{"rate_mips": 100.5, "horizon": "10ms", "seed": 18446744073709551615}`,
		`{"nodes": [{"path": "/a", "leaf": "sfq", "quantum": "5ms"}]}`,
		`{"nodes": [{"path": "/a", "leaf": "sfq"}, {"path": "/b", "weight": 0.25}],
		  "threads": [{"name": "x", "leaf": "/a", "program": {"kind": "mpeg", "loop": true}}]}`,
		`{"interrupts": [{"kind": "poisson", "rate_per_sec": 1e3, "service": "200us"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), uint64(0))
		f.Add([]byte(s), uint64(1<<63))
	}
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		c, err := simconfig.Parse(bytes.NewReader(data))
		if err != nil {
			return // not a config; JobKey's domain is parsed configs
		}
		key := JobKey(c, seed)
		if !isHexDigest(key) {
			t.Fatalf("JobKey = %q, not a 64-char hex digest", key)
		}
		// Round trip through the wire format hsfqd and hsfqmesh use.
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshaling parsed config: %v", err)
		}
		c2, err := simconfig.Parse(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("re-parsing marshaled config: %v", err)
		}
		if again := JobKey(c2, seed); again != key {
			t.Fatalf("key changed across marshal round trip: %s then %s\nconfig: %s", key, again, b)
		}
		if other := JobKey(c, seed+1); other == key {
			t.Fatalf("seed does not participate in the key: %d and %d both map to %s", seed, seed+1, key)
		}
	})
}

func isHexDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
