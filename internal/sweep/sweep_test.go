package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hsfq/internal/simconfig"
)

// testSpec is a small but non-trivial scenario: a proportional-share leaf
// and an SVR4 leaf, an MPEG decoder (seed-sensitive costs), a loop hog,
// and Poisson interrupts (seed-sensitive arrivals), at a short horizon.
const testSpec = `{
  "name": "test",
  "seeds": 2,
  "base": {
    "rate_mips": 100,
    "horizon": "300ms",
    "seed": 42,
    "nodes": [
      {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
      {"path": "/be", "weight": 1, "leaf": "svr4"}
    ],
    "threads": [
      {"name": "dec", "leaf": "/soft", "weight": 2,
       "program": {"kind": "mpeg", "loop": true}},
      {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
    ],
    "interrupts": [
      {"kind": "poisson", "rate_per_sec": 100, "service": "200us"}
    ]
  },
  "axes": [
    {"param": "quantum", "target": "/soft", "values": ["5ms", "20ms"]},
    {"param": "leaf", "target": "/soft", "values": ["sfq", "stride"]}
  ]
}`

func parseTestSpec(t *testing.T, js string) Spec {
	t.Helper()
	spec, err := ParseSpec(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestExpandGrid(t *testing.T) {
	spec := parseTestSpec(t, testSpec)
	jobs, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 { // 2 quanta x 2 leaves x 2 seeds
		t.Fatalf("expanded %d jobs, want 8", len(jobs))
	}
	seenPoints := map[string]bool{}
	for i, job := range jobs {
		if job.ID != i {
			t.Errorf("job %d has ID %d", i, job.ID)
		}
		if job.Seed != 42+uint64(job.Rep) {
			t.Errorf("job %d: seed %d for rep %d", i, job.Seed, job.Rep)
		}
		seenPoints[pointKey(job.Point)] = true
	}
	if len(seenPoints) != 4 {
		t.Errorf("saw %d distinct points, want 4", len(seenPoints))
	}
	// The axis values landed in the cloned configs, not the base.
	if got := jobs[0].Config.Nodes[0].Quantum.Time(); got != 5_000_000 {
		t.Errorf("job 0 quantum = %d", got)
	}
	if got := spec.Base.Nodes[0].Quantum.Time(); got != 10_000_000 {
		t.Errorf("base quantum mutated to %d", got)
	}
	last := jobs[len(jobs)-1]
	if last.Config.Nodes[0].Leaf != "stride" || last.Config.Nodes[0].Quantum.Time() != 20_000_000 {
		t.Errorf("last job config: leaf=%q quantum=%d", last.Config.Nodes[0].Leaf, last.Config.Nodes[0].Quantum.Time())
	}
}

// TestExpandFeedbackAxes sweeps the adaptive-leaf geometry: level count
// and aging bound on an mlfq node. Each expanded config must carry the
// axis values, validate, and actually run.
func TestExpandFeedbackAxes(t *testing.T) {
	spec := parseTestSpec(t, `{
	  "name": "feedback",
	  "seeds": 1,
	  "base": {
	    "rate_mips": 100,
	    "horizon": "100ms",
	    "seed": 42,
	    "nodes": [{"path": "/fb", "weight": 1, "leaf": "mlfq", "quantum": "2ms"}],
	    "threads": [
	      {"name": "hog", "leaf": "/fb", "program": {"kind": "loop"}},
	      {"name": "chatty", "leaf": "/fb", "program": {"kind": "interactive", "think_mean": "10ms"}}
	    ]
	  },
	  "axes": [
	    {"param": "levels", "target": "/fb", "values": [2, 5]},
	    {"param": "aging", "target": "/fb", "values": ["50ms", "400ms"]},
	    {"param": "leaf", "target": "/fb", "values": ["mlfq", "drr"]}
	  ]
	}`)
	jobs, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 { // 2 levels x 2 agings x 2 leaves
		t.Fatalf("expanded %d jobs, want 8", len(jobs))
	}
	for _, job := range jobs {
		nc := job.Config.Nodes[0]
		if nc.Levels != 2 && nc.Levels != 5 {
			t.Errorf("job %d: levels = %d", job.ID, nc.Levels)
		}
		if a := nc.Aging.Time(); a != 50_000_000 && a != 400_000_000 {
			t.Errorf("job %d: aging = %d", job.ID, a)
		}
		if err := job.Config.Validate(); err != nil {
			t.Errorf("job %d: %v", job.ID, err)
		}
	}
	// The drr end of the leaf axis must execute too (levels/aging are
	// inert there but still validate).
	last := jobs[len(jobs)-1]
	if last.Config.Nodes[0].Leaf != "drr" {
		t.Fatalf("last job leaf = %q, want drr", last.Config.Nodes[0].Leaf)
	}
	for _, job := range []Job{jobs[0], last} {
		if r := RunJob(job, true); r.Error != "" || r.Mismatch {
			t.Errorf("job %d failed: err=%q mismatch=%v", job.ID, r.Error, r.Mismatch)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	for name, mutate := range map[string]func(*Spec){
		"no base":       func(s *Spec) { s.Base.Nodes = nil },
		"unknown param": func(s *Spec) { s.Axes[0].Param = "bogus" },
		"no values":     func(s *Spec) { s.Axes[0].Values = nil },
		"bad target":    func(s *Spec) { s.Axes[0].Target = "/nope" },
		"dup axis":      func(s *Spec) { s.Axes[1] = s.Axes[0] },
	} {
		spec := parseTestSpec(t, testSpec)
		mutate(&spec)
		if _, err := Expand(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Unknown leaf kinds are rejected at expansion, with the registry list.
	spec := parseTestSpec(t, strings.Replace(testSpec, `"stride"`, `"bogus"`, 1))
	if _, err := Expand(spec); err == nil || !strings.Contains(err.Error(), "unknown leaf scheduler") {
		t.Errorf("bad leaf kind: %v", err)
	}
}

// TestDeterminismUnderConcurrency runs the same job on N goroutines
// simultaneously and requires byte-identical canonical outcomes: nothing
// in the build or run path may share state across simulations.
func TestDeterminismUnderConcurrency(t *testing.T) {
	spec := parseTestSpec(t, testSpec)
	jobs, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := jobs[0]
	const n = 8
	outs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := simconfig.Build(job.Config, simconfig.BuildOptions{Seed: job.Seed})
			if err != nil {
				t.Error(err)
				return
			}
			s.Run()
			outs[i] = Canonical(s)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("goroutine %d diverged:\n%s\nvs\n%s", i, outs[i], outs[0])
		}
	}
	if outs[0] == "" {
		t.Fatal("empty canonical output")
	}
}

// TestRunWorkerCountInvariance checks the engine's core guarantee: the
// full report — digests, metrics, aggregates, and the streamed JSONL
// bytes — is identical at any worker count.
func TestRunWorkerCountInvariance(t *testing.T) {
	spec := parseTestSpec(t, testSpec)
	var serial, parallel bytes.Buffer
	rep1, err := Run(spec, Options{Workers: 1, Stream: &serial})
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := Run(spec, Options{Workers: 8, Stream: &parallel})
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("JSONL streams differ:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
	for i := range rep1.Results {
		if rep1.Results[i].Digest != rep8.Results[i].Digest {
			t.Errorf("job %d digest differs across worker counts", i)
		}
	}
	if len(rep1.Aggregates) != 4 {
		t.Fatalf("got %d aggregates, want 4", len(rep1.Aggregates))
	}
	for _, agg := range rep1.Aggregates {
		if agg.Seeds != 2 {
			t.Errorf("point %v aggregated %d seeds", agg.Point, agg.Seeds)
		}
		if agg.Metrics["work_total"].N != 2 {
			t.Errorf("point %v work_total over %d values", agg.Point, agg.Metrics["work_total"].N)
		}
	}
}

// TestSeedReplicationsDiffer: the scenario has seed-sensitive randomness
// (MPEG costs, Poisson interrupts), so different replications of a point
// must not produce the same digest — if they did, the seed would not be
// reaching the simulation.
func TestSeedReplicationsDiffer(t *testing.T) {
	spec := parseTestSpec(t, testSpec)
	rep, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Digest == rep.Results[1].Digest {
		t.Error("rep 0 and rep 1 of the same point have identical digests")
	}
}

func TestRunVerify(t *testing.T) {
	spec := parseTestSpec(t, testSpec)
	spec.Seeds = 1
	rep, err := Run(spec, Options{Workers: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d job(s) failed verify", rep.Failed)
	}
}

// TestRunVerifyMismatch injects a flaky execution through the executeJob
// seam and checks a digest change between the two Verify runs surfaces as
// a Mismatch-flagged result and a Report.Mismatched count — the signal
// hsfqsweep turns into its distinct exit code.
func TestRunVerifyMismatch(t *testing.T) {
	orig := executeJob
	defer func() { executeJob = orig }()
	var mu sync.Mutex
	calls := map[int]int{}
	executeJob = func(job Job) (string, map[string]float64, error) {
		mu.Lock()
		calls[job.ID]++
		n := calls[job.ID]
		mu.Unlock()
		if job.ID == 0 {
			return fmt.Sprintf("digest-%d", n), map[string]float64{"x": 1}, nil
		}
		return "stable", map[string]float64{"x": 1}, nil
	}

	spec := parseTestSpec(t, testSpec)
	spec.Seeds = 1
	rep, err := Run(spec, Options{Workers: 2, Verify: true})
	if err == nil {
		t.Fatal("mismatch did not fail the run")
	}
	if rep.Mismatched != 1 || rep.Failed != 1 {
		t.Fatalf("mismatched=%d failed=%d, want 1/1", rep.Mismatched, rep.Failed)
	}
	r := rep.Results[0]
	if !r.Mismatch || !strings.Contains(r.Error, "nondeterministic") {
		t.Errorf("result 0: %+v", r)
	}
	for _, r := range rep.Results[1:] {
		if r.Mismatch || r.Error != "" {
			t.Errorf("stable job flagged: %+v", r)
		}
	}
}

// TestJobKey checks the request content address: stable across calls,
// sensitive to both config and seed, and distinct from sweep keys.
func TestJobKey(t *testing.T) {
	spec := parseTestSpec(t, testSpec)
	k1 := JobKey(spec.Base, 1)
	if k1 != JobKey(spec.Base, 1) {
		t.Error("JobKey not stable")
	}
	if len(k1) != 64 {
		t.Errorf("JobKey %q is not hex SHA-256", k1)
	}
	if JobKey(spec.Base, 2) == k1 {
		t.Error("seed does not reach the key")
	}
	changed := spec.Base
	changed.RateMIPS = 999
	if JobKey(changed, 1) == k1 {
		t.Error("config change does not reach the key")
	}
	if SweepKey(spec) == SweepKey(Spec{Name: "other", Base: spec.Base}) {
		t.Error("SweepKey insensitive to the spec")
	}
}

func TestRunJobError(t *testing.T) {
	spec := parseTestSpec(t, testSpec)
	// A trace program with a missing file parses and validates, but fails
	// at build time — the failure must surface as a job error.
	spec.Base.Threads[1].Program = simconfig.ProgramConfig{Kind: "trace", File: "/nonexistent"}
	rep, err := Run(spec, Options{Workers: 2})
	if err == nil {
		t.Fatal("missing-file build error not reported")
	}
	if rep == nil || rep.Failed != rep.Jobs {
		t.Fatalf("report: %+v", rep)
	}
}
