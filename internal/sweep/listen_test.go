package sweep

import (
	"path/filepath"
	"strings"
	"testing"

	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

const listenConfig = `{
  "rate_mips": 100,
  "horizon": "100ms",
  "seed": 9,
  "nodes": [
    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "rr"}
  ],
  "threads": [
    {"name": "dec", "leaf": "/soft", "weight": 2, "program": {"kind": "mpeg", "loop": true}},
    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
  ]
}`

func TestExecuteConfigListened(t *testing.T) {
	cfg, err := simconfig.Parse(strings.NewReader(listenConfig))
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantMetrics, err := ExecuteConfig(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := trace.NewHasher()
	var metas []trace.ThreadMeta
	digest, m, err := ExecuteConfigListened(cfg, 0, store, func(s *simconfig.Simulation) {
		s.Machine.Listen(h)
		metas = s.ThreadMetas()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Listeners must not perturb the run: same digest and metrics as the
	// plain path.
	if digest != wantDigest {
		t.Fatalf("digest %s != %s", digest, wantDigest)
	}
	if len(m) != len(wantMetrics) {
		t.Fatalf("metrics differ: %v vs %v", m, wantMetrics)
	}
	if h.Rows() == 0 {
		t.Fatal("listener saw no events")
	}
	if len(metas) != 2 || metas[0].Name != "dec" || metas[0].Depth != 1 || metas[0].Path != "/soft" {
		t.Fatalf("thread metas: %+v", metas)
	}
	// The traced run still contributes its final checkpoint.
	ckpts, _ := filepath.Glob(filepath.Join(store.Dir, "*.ckpt"))
	if len(ckpts) != 1 {
		t.Fatalf("want 1 stored checkpoint, got %v", ckpts)
	}

	// A second traced run of the same job must not resume (the listener
	// needs the full stream): the hashed row count matches a fresh run.
	h2 := trace.NewHasher()
	if _, _, err := ExecuteConfigListened(cfg, 0, store, func(s *simconfig.Simulation) {
		s.Machine.Listen(h2)
	}); err != nil {
		t.Fatal(err)
	}
	if h2.Rows() != h.Rows() || h2.Sum() != h.Sum() {
		t.Fatalf("second traced run saw %d rows (%s), first %d (%s)", h2.Rows(), h2.Sum(), h.Rows(), h.Sum())
	}
}
