package sweep

import (
	"hsfq/internal/checkpoint"
	"hsfq/internal/simconfig"
)

// ExecuteConfigListened is ExecuteConfig with machine listeners: the
// traced execution path behind hsfqd's live trace streaming. attach runs
// after the build and before the first event — the hook where the caller
// wires listeners (Machine.Listen) and reads thread metadata.
//
// Unlike ExecuteConfigCheckpointed this never resumes from a stored
// checkpoint: a listener must observe the complete event stream from
// tick zero, and a resumed run would replay only the suffix. Determinism
// makes that sound rather than wasteful — the stream of a key-addressed
// job is canonical whichever path produced it. When a store is given the
// run still contributes its final pre-settlement state, so traced runs
// keep feeding horizon extension exactly like untraced ones.
func ExecuteConfigListened(c simconfig.Config, seed uint64, store *Store, attach func(*simconfig.Simulation)) (string, map[string]float64, error) {
	s, err := simconfig.Build(c, simconfig.BuildOptions{Seed: seed})
	if err != nil {
		return "", nil, err
	}
	if attach != nil {
		attach(s)
	}
	horizon := effectiveHorizon(c)
	s.Machine.Run(horizon)
	if store != nil {
		// Snapshot before Flush, mirroring ExecuteConfigCheckpointed: a
		// resumed run must continue from the un-settled state.
		if data, err := checkpoint.Save(s, checkpoint.Options{}); err == nil {
			store.Put(PrefixKey(c, seed), horizon, data) // best-effort: see Put
		}
	}
	s.Machine.Flush()
	return Digest(s), Metrics(s), nil
}
