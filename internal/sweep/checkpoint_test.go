package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/testutil"
)

// extensionSpec sweeps the horizon itself: with a checkpoint store, the
// longer-horizon jobs should resume from the shorter-horizon jobs' final
// states instead of re-simulating the shared prefix.
const extensionSpec = `{
  "name": "extend",
  "seeds": 2,
  "base": {
    "rate_mips": 100,
    "horizon": "300ms",
    "seed": 42,
    "nodes": [
      {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
      {"path": "/be", "weight": 1, "leaf": "svr4"}
    ],
    "threads": [
      {"name": "dec", "leaf": "/soft", "weight": 2,
       "program": {"kind": "mpeg", "frames": 400, "loop": true}},
      {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
    ],
    "interrupts": [
      {"kind": "poisson", "rate_per_sec": 100, "service": "200us"}
    ]
  },
  "axes": [
    {"param": "horizon", "values": ["150ms", "300ms", "600ms"]}
  ]
}`

// TestHorizonExtensionByteIdentity is the sweep-level acceptance
// criterion: the streamed JSONL and the report's results must be
// byte-for-byte identical whether jobs run from scratch or resume from
// checkpoints; only Report.Resumed may differ.
func TestHorizonExtensionByteIdentity(t *testing.T) {
	spec := parseTestSpec(t, extensionSpec)
	dir := t.TempDir()

	var fresh bytes.Buffer
	repFresh, err := Run(spec, Options{Workers: 2, Stream: &fresh})
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	if repFresh.Resumed != 0 {
		t.Fatalf("fresh run claims %d resumed jobs", repFresh.Resumed)
	}

	// Workers: 1 so the 150ms jobs complete (and store checkpoints)
	// before the longer-horizon jobs of the same seed start.
	var primed bytes.Buffer
	repPrimed, err := Run(spec, Options{Workers: 1, Stream: &primed, CheckpointDir: dir})
	if err != nil {
		t.Fatalf("priming run: %v", err)
	}
	if repPrimed.Resumed == 0 {
		t.Fatal("priming run resumed nothing; expected horizon extension within the sweep")
	}
	if d := testutil.DiffBytes(primed.Bytes(), fresh.Bytes()); d != "" {
		t.Fatalf("checkpointed sweep JSONL differs from fresh: %s", d)
	}

	// Second pass over a fully primed store: every job resumes, bytes
	// still identical.
	var again bytes.Buffer
	repAgain, err := Run(spec, Options{Workers: 3, Stream: &again, CheckpointDir: dir})
	if err != nil {
		t.Fatalf("primed run: %v", err)
	}
	if want := repAgain.Jobs; repAgain.Resumed != want {
		t.Fatalf("primed run resumed %d of %d jobs", repAgain.Resumed, want)
	}
	if d := testutil.DiffBytes(again.Bytes(), fresh.Bytes()); d != "" {
		t.Fatalf("fully-primed sweep JSONL differs from fresh: %s", d)
	}

	// Verify mode over the primed store compares every resumed digest
	// against a from-scratch rerun.
	rep, err := Run(spec, Options{Workers: 2, Verify: true, CheckpointDir: dir})
	if err != nil {
		t.Fatalf("verify over primed store: %v", err)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("%d resumed jobs diverged from from-scratch reruns", rep.Mismatched)
	}
}

func TestExecuteConfigCheckpointedMatchesFull(t *testing.T) {
	spec := parseTestSpec(t, extensionSpec)
	c := spec.Base
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Prime at a short horizon.
	short := c
	short.Horizon = simconfig.Duration(100 * sim.Millisecond)
	if _, _, resumed, err := ExecuteConfigCheckpointed(short, 7, store); err != nil || resumed {
		t.Fatalf("prime: resumed=%v err=%v", resumed, err)
	}

	long := c
	long.Horizon = simconfig.Duration(400 * sim.Millisecond)
	wantDigest, wantMetrics, err := ExecuteConfig(long, 7)
	if err != nil {
		t.Fatal(err)
	}
	digest, m, resumed, err := ExecuteConfigCheckpointed(long, 7, store)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("long run did not resume from the primed checkpoint")
	}
	if digest != wantDigest {
		t.Fatalf("resumed digest %s, full %s", digest, wantDigest)
	}
	if len(m) != len(wantMetrics) {
		t.Fatalf("metric sets differ: %v vs %v", m, wantMetrics)
	}
	for k, v := range wantMetrics {
		if m[k] != v {
			t.Fatalf("metric %s: resumed %v, full %v", k, m[k], v)
		}
	}

	// A different seed must not share the prefix.
	if _, _, resumed, err := ExecuteConfigCheckpointed(long, 8, store); err != nil || resumed {
		t.Fatalf("other seed: resumed=%v err=%v", resumed, err)
	}
}

// TestCorruptCheckpointFallsBack plants garbage and a truncated real
// checkpoint under the exact names the store would use; execution must
// fall back to a full run with correct results.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	spec := parseTestSpec(t, extensionSpec)
	c := spec.Base
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prefix := PrefixKey(c, 7)
	garbage := filepath.Join(store.Dir, prefix+".at1000000.ckpt")
	if err := os.WriteFile(garbage, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	wantDigest, _, err := ExecuteConfig(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	digest, _, resumed, err := ExecuteConfigCheckpointed(c, 7, store)
	if err != nil {
		t.Fatalf("corrupt store broke execution: %v", err)
	}
	if resumed {
		t.Fatal("claimed to resume from garbage")
	}
	if digest != wantDigest {
		t.Fatalf("digest %s after fallback, want %s", digest, wantDigest)
	}

	// The healthy run stored its own checkpoint; damage a copy of it at
	// a later name and re-run: Best picks the damaged (later) file,
	// Restore rejects it, and execution still succeeds from scratch.
	matches, _ := filepath.Glob(filepath.Join(store.Dir, prefix+".at*.ckpt"))
	if len(matches) == 0 {
		t.Fatal("healthy run stored no checkpoint")
	}
	data, err := os.ReadFile(matches[len(matches)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store.Dir, prefix+".at2000000.ckpt"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove intact entries so only damaged ones remain candidates.
	for _, m := range matches {
		if !strings.Contains(m, ".at1000000.") && !strings.Contains(m, ".at2000000.") {
			os.Remove(m)
		}
	}
	digest, _, resumed, err = ExecuteConfigCheckpointed(c, 7, store)
	if err != nil || resumed || digest != wantDigest {
		t.Fatalf("truncated-checkpoint fallback: digest=%s resumed=%v err=%v", digest, resumed, err)
	}
}

func TestPrefixKeyIgnoresHorizonOnly(t *testing.T) {
	spec := parseTestSpec(t, extensionSpec)
	a := spec.Base
	b := spec.Base
	b.Horizon = simconfig.Duration(7 * sim.Second)
	if PrefixKey(a, 1) != PrefixKey(b, 1) {
		t.Fatal("horizon change altered the prefix key")
	}
	if PrefixKey(a, 1) == PrefixKey(a, 2) {
		t.Fatal("seed change did not alter the prefix key")
	}
	c := spec.Base
	c.RateMIPS = 200
	if PrefixKey(a, 1) == PrefixKey(c, 1) {
		t.Fatal("config change did not alter the prefix key")
	}
}
