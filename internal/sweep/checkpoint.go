package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hsfq/internal/checkpoint"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
)

// PrefixKey is the content address of a simulation's horizon-independent
// prefix: JobKey with the horizon zeroed. Two jobs with equal prefix keys
// describe the same deterministic run observed for different lengths, so
// a checkpoint taken at tick T of one is a valid starting point for the
// other whenever T does not exceed its horizon. That is the soundness
// argument behind horizon extension: resume equivalence (the checkpoint
// subsystem's tested invariant) plus prefix-key equality give byte-
// identical results without re-simulating the shared prefix.
func PrefixKey(c simconfig.Config, seed uint64) string {
	c.Horizon = 0
	return JobKey(c, seed)
}

// Store is a directory of simulation checkpoints keyed by prefix key and
// snapshot instant: <prefixkey>.at<ns>.ckpt. Writes are atomic
// (tmp+rename), so concurrent sweep workers and daemon requests can share
// a directory; corrupt or unreadable entries are skipped, never fatal —
// the worst outcome of a bad store is a full re-simulation.
type Store struct {
	Dir string
}

// NewStore opens (creating if needed) a checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty checkpoint dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint dir: %w", err)
	}
	return &Store{Dir: dir}, nil
}

func (st *Store) path(prefix string, at sim.Time) string {
	return filepath.Join(st.Dir, fmt.Sprintf("%s.at%d.ckpt", prefix, int64(at)))
}

// Best returns the latest stored checkpoint for the prefix taken at or
// before maxAt, or ok=false if none is usable. Decoding is not attempted
// here; a corrupt file surfaces as a Restore error and the caller falls
// back to full execution.
func (st *Store) Best(prefix string, maxAt sim.Time) (data []byte, at sim.Time, ok bool) {
	// The prefix is hex SHA-256: no glob metacharacters.
	matches, err := filepath.Glob(filepath.Join(st.Dir, prefix+".at*.ckpt"))
	if err != nil {
		return nil, 0, false
	}
	best := sim.Time(-1)
	var bestPath string
	for _, m := range matches {
		name := filepath.Base(m)
		rest, found := strings.CutPrefix(name, prefix+".at")
		if !found {
			continue
		}
		ns, err := strconv.ParseInt(strings.TrimSuffix(rest, ".ckpt"), 10, 64)
		if err != nil || ns < 0 {
			continue
		}
		if t := sim.Time(ns); t <= maxAt && t > best {
			best, bestPath = t, m
		}
	}
	if best < 0 {
		return nil, 0, false
	}
	b, err := os.ReadFile(bestPath)
	if err != nil {
		return nil, 0, false
	}
	return b, best, true
}

// Put stores a checkpoint atomically. Errors are returned for the caller
// to log; a failed write never fails the job that produced it.
func (st *Store) Put(prefix string, at sim.Time, data []byte) error {
	final := st.path(prefix, at)
	tmp, err := os.CreateTemp(st.Dir, ".ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ExecuteConfigCheckpointed is ExecuteConfig with a checkpoint store: it
// resumes from the best stored prefix of the run when one exists, and
// stores the run's own final pre-settlement state for future horizon
// extensions. Results are byte-identical to ExecuteConfig — that is the
// resume-equivalence invariant, and the sweep Verify mode re-checks it
// per job by comparing the resumed digest against a from-scratch rerun.
// The returned flag reports whether a checkpoint was actually reused.
func ExecuteConfigCheckpointed(c simconfig.Config, seed uint64, store *Store) (string, map[string]float64, bool, error) {
	if store == nil {
		digest, m, err := ExecuteConfig(c, seed)
		return digest, m, false, err
	}
	prefix := PrefixKey(c, seed)

	var s *simconfig.Simulation
	resumed := false
	if data, _, ok := store.Best(prefix, effectiveHorizon(c)); ok {
		if restored, err := checkpoint.Restore(data, checkpoint.Options{}); err == nil {
			s = restored
			resumed = true
		}
		// A corrupt or version-skewed checkpoint falls through to a full
		// build: the store is a cache, never an authority.
	}
	if s == nil {
		var err error
		s, err = simconfig.Build(c, simconfig.BuildOptions{Seed: seed})
		if err != nil {
			return "", nil, false, err
		}
	}

	// The restored simulation carries the horizon it was checkpointed
	// under; the caller's horizon governs this run. The override is sound
	// because nothing the build constructs depends on the horizon — only
	// Run and the end-of-run metrics read it.
	horizon := effectiveHorizon(c)
	s.Config.Horizon = simconfig.Duration(horizon)
	s.Machine.Run(horizon)

	// Snapshot before Flush: Flush charges the in-flight segment, which
	// only settles accounting for reporting. A resumed run must continue
	// from the un-settled state, exactly as the event loop left it.
	if data, err := checkpoint.Save(s, checkpoint.Options{}); err == nil {
		store.Put(prefix, horizon, data) // best-effort: see Put
	}
	s.Machine.Flush()
	return Digest(s), Metrics(s), resumed, nil
}

// effectiveHorizon mirrors simconfig.Build's defaulting.
func effectiveHorizon(c simconfig.Config) sim.Time {
	if c.Horizon == 0 {
		return 30 * sim.Second
	}
	return c.Horizon.Time()
}
