package sweep

import (
	"reflect"
	"strings"
	"testing"

	"hsfq/internal/simconfig"
)

// TestExecuteConfigQueueInvariant is the whole-run form of the event-queue
// equivalence contract: the same config executed under the heap and under
// the timing wheel must produce the identical outcome digest and metrics.
// The digest covers per-thread work, segments, machine counters, and
// deadline/frame accounting, so any divergence in event ordering anywhere
// in a run surfaces here.
func TestExecuteConfigQueueInvariant(t *testing.T) {
	cfg, err := simconfig.Parse(strings.NewReader(`{
	  "rate_mips": 100,
	  "horizon": "3s",
	  "seed": 11,
	  "nodes": [
	    {"path": "/rt", "weight": 3},
	    {"path": "/rt/hard", "weight": 2, "leaf": "edf"},
	    {"path": "/rt/soft", "weight": 1, "leaf": "sfq", "quantum": "5ms"},
	    {"path": "/be", "weight": 1, "leaf": "svr4"}
	  ],
	  "threads": [
	    {"name": "sensor", "leaf": "/rt/hard",
	     "program": {"kind": "periodic", "period": "20ms", "cost": "3ms"}},
	    {"name": "dec", "leaf": "/rt/soft", "weight": 3,
	     "program": {"kind": "mpeg", "frames": 90, "loop": true}},
	    {"name": "editor", "leaf": "/rt/soft",
	     "program": {"kind": "interactive", "think_mean": "50ms"}},
	    {"name": "make", "leaf": "/be",
	     "program": {"kind": "dhrystone", "fault_every": 60, "fault_sleep": "2ms"}}
	  ],
	  "interrupts": [
	    {"kind": "periodic", "period": "10ms", "service": "200us"},
	    {"kind": "poisson", "rate_per_sec": 80, "service": "300us"}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 42} {
		heapCfg, wheelCfg := cfg, cfg
		heapCfg.EventQueue = "heap"
		wheelCfg.EventQueue = "wheel"
		hd, hm, err := ExecuteConfig(heapCfg, seed)
		if err != nil {
			t.Fatalf("seed %d: heap run: %v", seed, err)
		}
		wd, wm, err := ExecuteConfig(wheelCfg, seed)
		if err != nil {
			t.Fatalf("seed %d: wheel run: %v", seed, err)
		}
		if hd != wd {
			t.Fatalf("seed %d: digests diverge: heap %s, wheel %s", seed, hd, wd)
		}
		if !reflect.DeepEqual(hm, wm) {
			t.Fatalf("seed %d: metrics diverge:\nheap:  %v\nwheel: %v", seed, hm, wm)
		}
	}
}

// TestEventQueueAxis checks the sweep axis: an event_queue axis expands
// into per-queue grid points whose jobs carry the selection into the
// config, and every point of the pair digests identically.
func TestEventQueueAxis(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`{
	  "seeds": 2,
	  "base": {
	    "horizon": "500ms",
	    "nodes": [{"path": "/run", "weight": 1, "leaf": "sfq", "quantum": "5ms"}],
	    "threads": [
	      {"name": "a", "leaf": "/run", "program": {"kind": "loop"}},
	      {"name": "b", "leaf": "/run", "weight": 2, "program": {"kind": "onoff", "bursts": 3, "off": "20ms"}}
	    ]
	  },
	  "axes": [{"param": "event_queue", "values": ["heap", "wheel"]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 { // 2 queues x 2 seeds
		t.Fatalf("expanded %d jobs, want 4", len(jobs))
	}
	digests := map[uint64]map[string]string{} // seed -> queue -> digest
	for _, job := range jobs {
		q := job.Point["event_queue"]
		if job.Config.EventQueue != q {
			t.Fatalf("job %s: config queue %q, point %q", JobKey(job.Config, job.Seed), job.Config.EventQueue, q)
		}
		d, _, err := ExecuteConfig(job.Config, job.Seed)
		if err != nil {
			t.Fatalf("job %s: %v", JobKey(job.Config, job.Seed), err)
		}
		if digests[job.Seed] == nil {
			digests[job.Seed] = map[string]string{}
		}
		digests[job.Seed][q] = d
	}
	for seed, byQueue := range digests {
		if byQueue["heap"] != byQueue["wheel"] {
			t.Fatalf("seed %d: axis digests diverge: heap %s, wheel %s", seed, byQueue["heap"], byQueue["wheel"])
		}
	}
}
