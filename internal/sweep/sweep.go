// Package sweep runs batches of deterministic simulations: it expands a
// parameter-sweep specification over a base simconfig scenario into a grid
// of self-contained jobs, executes them across a bounded pool of worker
// goroutines, digests each job's observable outcome, and aggregates seed
// replications into mean/p50/p99 statistics.
//
// The paper's evaluation is exactly such a batch — eleven figures plus ten
// ablations, each one deterministic run at one parameter point — and
// scheduler studies at large sweep algorithms x workloads the same way.
// Every job owns private sim/cpu/core instances, so parallelism lives
// entirely outside the simulation and cannot perturb it; the Verify option
// turns that claim into a checked property by running every job twice and
// failing on any digest mismatch.
//
// A sweep spec is JSON:
//
//	{
//	  "name": "quantum-vs-leaf",
//	  "seeds": 3,
//	  "base": { ... any simconfig.Config ... },
//	  "axes": [
//	    {"param": "quantum", "target": "/soft", "values": ["5ms", "10ms"]},
//	    {"param": "leaf", "target": "/soft", "values": ["sfq", "stride"]},
//	    {"param": "mips", "values": [50, 100]}
//	  ]
//	}
//
// The grid is the cartesian product of the axes (here 2x2x2 = 8 points),
// each point replicated at `seeds` consecutive seeds (24 jobs).
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
)

// Axis parameters. Duration-valued params accept simconfig durations
// ("10ms" or bare nanoseconds); numeric params accept JSON numbers; "leaf"
// accepts any registered scheduler name (sched.Names()).
const (
	ParamMIPS             = "mips"              // Config.RateMIPS (numbers)
	ParamHorizon          = "horizon"           // Config.Horizon (durations)
	ParamLeaf             = "leaf"              // node target's leaf kind (strings)
	ParamQuantum          = "quantum"           // node target's quantum; all leaves when target is "" (durations)
	ParamWeight           = "weight"            // node target's weight (numbers)
	ParamThreadWeight     = "thread_weight"     // thread target's weight (numbers)
	ParamInterruptPeriod  = "interrupt_period"  // Interrupts[index].Period (durations)
	ParamInterruptService = "interrupt_service" // Interrupts[index].Service (durations)
	ParamInterruptRate    = "interrupt_rate"    // Interrupts[index].RatePerSec (numbers)
	ParamCores            = "cores"             // Config.Cores (numbers)
	ParamPolicy           = "policy"            // Config.Policy (strings)
	ParamSwitchCost       = "switch_cost"       // Config.SwitchCost (durations)
	ParamMigrationCost    = "migration_cost"    // Config.MigrationCost (durations)
	ParamEventQueue       = "event_queue"       // Config.EventQueue (strings)
	ParamLevels           = "levels"            // node target's mlfq level count (numbers)
	ParamAging            = "aging"             // node target's mlfq aging bound (durations)
)

// Axis is one swept parameter and the values it takes.
type Axis struct {
	// Param is one of the Param* constants.
	Param string `json:"param"`
	// Target selects the node path (leaf, quantum, weight) or thread
	// name (thread_weight) the axis applies to.
	Target string `json:"target,omitempty"`
	// Index selects which interrupt source an interrupt_* axis applies to.
	Index int `json:"index,omitempty"`
	// Values are the grid points along this axis.
	Values []json.RawMessage `json:"values"`
}

// Spec is a parsed sweep specification.
type Spec struct {
	// Name labels the sweep in reports.
	Name string `json:"name"`
	// Base is the scenario every job starts from.
	Base simconfig.Config `json:"base"`
	// Axes span the parameter grid; empty means a single point (the base).
	Axes []Axis `json:"axes"`
	// Seeds is the number of seed replications per grid point; 0 means 1.
	Seeds int `json:"seeds"`
	// BaseSeed is the seed of replication 0 (replication r runs at
	// BaseSeed+r); 0 means the base config's seed, or 1 if that is 0 too.
	BaseSeed uint64 `json:"base_seed"`
}

// ParseSpec decodes a JSON sweep spec.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("sweep: %w", err)
	}
	return s, nil
}

// Job is one self-contained simulation of the sweep: a fully applied
// config plus the seed to instantiate it at.
type Job struct {
	// ID numbers jobs densely in grid order; results are reported in ID
	// order regardless of execution order.
	ID int `json:"id"`
	// Point maps each axis key ("param" or "param@target") to the value
	// label this job runs at.
	Point map[string]string `json:"point"`
	// Rep is the replication index in [0, Seeds).
	Rep int `json:"rep"`
	// Seed instantiates the config.
	Seed uint64 `json:"seed"`

	// Config is the base with this point's values applied. Runners must
	// not mutate it: replications of the same point share the clone.
	Config simconfig.Config `json:"-"`
}

// choice is one concrete value along one axis.
type choice struct {
	key   string // axis key in Job.Point
	label string // value label in Job.Point
	set   func(*simconfig.Config) error
}

// Expand turns a spec into its full job list: the cartesian product of
// the axes, times the seed replications. Every job's config is validated,
// so a bad grid fails here rather than mid-run.
func Expand(spec Spec) ([]Job, error) {
	if len(spec.Base.Nodes) == 0 {
		return nil, fmt.Errorf("sweep: spec has no base scenario (base.nodes is empty)")
	}
	seeds := spec.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	baseSeed := spec.BaseSeed
	if baseSeed == 0 {
		baseSeed = spec.Base.Seed
	}
	if baseSeed == 0 {
		baseSeed = 1
	}

	axes := make([][]choice, len(spec.Axes))
	seen := map[string]bool{}
	points := 1
	for i, ax := range spec.Axes {
		cs, err := expandAxis(ax)
		if err != nil {
			return nil, err
		}
		if seen[cs[0].key] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", cs[0].key)
		}
		seen[cs[0].key] = true
		axes[i] = cs
		points *= len(cs)
	}

	jobs := make([]Job, 0, points*seeds)
	idx := make([]int, len(axes)) // odometer over the grid
	for p := 0; p < points; p++ {
		point := make(map[string]string, len(axes))
		cfg := cloneConfig(spec.Base)
		for a, cs := range axes {
			c := cs[idx[a]]
			point[c.key] = c.label
			if err := c.set(&cfg); err != nil {
				return nil, fmt.Errorf("sweep: point %v: %w", point, err)
			}
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %v: %w", point, err)
		}
		for rep := 0; rep < seeds; rep++ {
			jobs = append(jobs, Job{
				ID:     len(jobs),
				Point:  point,
				Rep:    rep,
				Seed:   baseSeed + uint64(rep),
				Config: cfg,
			})
		}
		// Advance the odometer, last axis fastest.
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(axes[a]) {
				break
			}
			idx[a] = 0
		}
	}
	return jobs, nil
}

func expandAxis(ax Axis) ([]choice, error) {
	if len(ax.Values) == 0 {
		return nil, fmt.Errorf("sweep: axis %q has no values", ax.Param)
	}
	key := ax.Param
	if ax.Target != "" {
		key += "@" + ax.Target
	}
	cs := make([]choice, 0, len(ax.Values))
	for _, raw := range ax.Values {
		c, err := makeChoice(ax, key, raw)
		if err != nil {
			return nil, fmt.Errorf("sweep: axis %q: %w", key, err)
		}
		cs = append(cs, c)
	}
	return cs, nil
}

func makeChoice(ax Axis, key string, raw json.RawMessage) (choice, error) {
	number := func() (float64, error) {
		var n float64
		if err := json.Unmarshal(raw, &n); err != nil {
			return 0, fmt.Errorf("value %s is not a number", raw)
		}
		return n, nil
	}
	duration := func() (simconfig.Duration, error) {
		var d simconfig.Duration
		if err := json.Unmarshal(raw, &d); err != nil {
			return 0, fmt.Errorf("value %s is not a duration", raw)
		}
		return d, nil
	}
	switch ax.Param {
	case ParamMIPS:
		n, err := number()
		if err != nil {
			return choice{}, err
		}
		return choice{key, fmtNum(n), func(c *simconfig.Config) error {
			c.RateMIPS = int64(n)
			return nil
		}}, nil
	case ParamHorizon:
		d, err := duration()
		if err != nil {
			return choice{}, err
		}
		return choice{key, fmtDur(d), func(c *simconfig.Config) error {
			c.Horizon = d
			return nil
		}}, nil
	case ParamLeaf:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return choice{}, fmt.Errorf("value %s is not a string", raw)
		}
		if !sched.Known(s) {
			return choice{}, fmt.Errorf("unknown leaf scheduler %q (have %v)", s, sched.Names())
		}
		target := ax.Target
		return choice{key, s, func(c *simconfig.Config) error {
			nc, err := findNode(c, target)
			if err != nil {
				return err
			}
			nc.Leaf = s
			return nil
		}}, nil
	case ParamQuantum:
		d, err := duration()
		if err != nil {
			return choice{}, err
		}
		target := ax.Target
		return choice{key, fmtDur(d), func(c *simconfig.Config) error {
			if target == "" { // all leaves
				for i := range c.Nodes {
					if c.Nodes[i].Leaf != "" {
						c.Nodes[i].Quantum = d
					}
				}
				return nil
			}
			nc, err := findNode(c, target)
			if err != nil {
				return err
			}
			nc.Quantum = d
			return nil
		}}, nil
	case ParamWeight:
		n, err := number()
		if err != nil {
			return choice{}, err
		}
		target := ax.Target
		return choice{key, fmtNum(n), func(c *simconfig.Config) error {
			nc, err := findNode(c, target)
			if err != nil {
				return err
			}
			nc.Weight = n
			return nil
		}}, nil
	case ParamThreadWeight:
		n, err := number()
		if err != nil {
			return choice{}, err
		}
		target := ax.Target
		return choice{key, fmtNum(n), func(c *simconfig.Config) error {
			for i := range c.Threads {
				if c.Threads[i].Name == target {
					c.Threads[i].Weight = n
					return nil
				}
			}
			return fmt.Errorf("no thread %q", target)
		}}, nil
	case ParamInterruptPeriod, ParamInterruptService:
		d, err := duration()
		if err != nil {
			return choice{}, err
		}
		param, index := ax.Param, ax.Index
		return choice{key, fmtDur(d), func(c *simconfig.Config) error {
			if index < 0 || index >= len(c.Interrupts) {
				return fmt.Errorf("no interrupt source %d", index)
			}
			if param == ParamInterruptPeriod {
				c.Interrupts[index].Period = d
			} else {
				c.Interrupts[index].Service = d
			}
			return nil
		}}, nil
	case ParamInterruptRate:
		n, err := number()
		if err != nil {
			return choice{}, err
		}
		index := ax.Index
		return choice{key, fmtNum(n), func(c *simconfig.Config) error {
			if index < 0 || index >= len(c.Interrupts) {
				return fmt.Errorf("no interrupt source %d", index)
			}
			c.Interrupts[index].RatePerSec = n
			return nil
		}}, nil
	case ParamCores:
		n, err := number()
		if err != nil {
			return choice{}, err
		}
		return choice{key, fmtNum(n), func(c *simconfig.Config) error {
			c.Cores = int(n)
			return nil
		}}, nil
	case ParamPolicy:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return choice{}, fmt.Errorf("value %s is not a string", raw)
		}
		if _, err := cpu.ParsePolicy(s); err != nil {
			return choice{}, err
		}
		return choice{key, s, func(c *simconfig.Config) error {
			c.Policy = s
			return nil
		}}, nil
	case ParamEventQueue:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return choice{}, fmt.Errorf("value %s is not a string", raw)
		}
		if !sim.KnownEventQueue(s) {
			return choice{}, fmt.Errorf("unknown event queue %q (have %v)", s, sim.EventQueueNames())
		}
		return choice{key, s, func(c *simconfig.Config) error {
			c.EventQueue = s
			return nil
		}}, nil
	case ParamLevels:
		n, err := number()
		if err != nil {
			return choice{}, err
		}
		target := ax.Target
		return choice{key, fmtNum(n), func(c *simconfig.Config) error {
			nc, err := findNode(c, target)
			if err != nil {
				return err
			}
			nc.Levels = int(n)
			return nil
		}}, nil
	case ParamAging:
		d, err := duration()
		if err != nil {
			return choice{}, err
		}
		target := ax.Target
		return choice{key, fmtDur(d), func(c *simconfig.Config) error {
			nc, err := findNode(c, target)
			if err != nil {
				return err
			}
			nc.Aging = d
			return nil
		}}, nil
	case ParamSwitchCost, ParamMigrationCost:
		d, err := duration()
		if err != nil {
			return choice{}, err
		}
		param := ax.Param
		return choice{key, fmtDur(d), func(c *simconfig.Config) error {
			if param == ParamSwitchCost {
				c.SwitchCost = d
			} else {
				c.MigrationCost = d
			}
			return nil
		}}, nil
	default:
		return choice{}, fmt.Errorf("unknown param %q", ax.Param)
	}
}

func findNode(c *simconfig.Config, path string) (*simconfig.NodeConfig, error) {
	for i := range c.Nodes {
		if c.Nodes[i].Path == path {
			return &c.Nodes[i], nil
		}
	}
	return nil, fmt.Errorf("no node %q", path)
}

// cloneConfig deep-copies the slices (and the one pointer field) so axis
// setters never write through to the spec's base.
func cloneConfig(c simconfig.Config) simconfig.Config {
	c.Nodes = append([]simconfig.NodeConfig(nil), c.Nodes...)
	c.Threads = append([]simconfig.ThreadConfig(nil), c.Threads...)
	c.Interrupts = append([]simconfig.InterruptConfig(nil), c.Interrupts...)
	for i, tc := range c.Threads {
		if tc.RTPriority != nil {
			v := *tc.RTPriority
			c.Threads[i].RTPriority = &v
		}
		if tc.Affinity != nil {
			v := *tc.Affinity
			c.Threads[i].Affinity = &v
		}
	}
	return c
}

func fmtNum(n float64) string { return strconv.FormatFloat(n, 'g', -1, 64) }

func fmtDur(d simconfig.Duration) string { return time.Duration(d.Time()).String() }
