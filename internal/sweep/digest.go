package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"hsfq/internal/simconfig"
)

// Canonical renders the observable outcome of a completed simulation in a
// stable text form: machine counters, per-thread accounting in attach
// order, and per-program metrics in name order. Two runs of the same
// config at the same seed must produce identical canonical forms; that is
// the determinism contract Digest checks.
func Canonical(s *simconfig.Simulation) string {
	var b strings.Builder
	st := s.Machine.Stats()
	fmt.Fprintf(&b, "machine work=%d dispatches=%d preemptions=%d interrupts=%d stolen=%d idle=%d\n",
		int64(st.Work), st.Dispatches, st.Preemptions, st.Interrupts, int64(st.Stolen), int64(st.Idle))
	// Per-core lines appear only on multicore machines so single-core
	// digests stay byte-identical to the pre-SMP format.
	if n := s.Machine.NumCores(); n > 1 {
		fmt.Fprintf(&b, "machine migrations=%d\n", st.Migrations)
		for c := 0; c < n; c++ {
			cs := s.Machine.CoreStats(c)
			fmt.Fprintf(&b, "core %d work=%d dispatches=%d preemptions=%d migrations=%d idle=%d\n",
				c, int64(cs.Work), cs.Dispatches, cs.Preemptions, cs.Migrations, int64(cs.Idle))
		}
	}
	for _, th := range s.Threads {
		fmt.Fprintf(&b, "thread %s done=%d segments=%d waited=%d state=%s\n",
			th.Name, int64(th.Done), th.Segments, int64(th.Waited), th.State)
	}
	horizon := s.Config.Horizon.Time()
	for _, name := range sortedKeys(s.Periodics) {
		p := s.Periodics[name]
		fmt.Fprintf(&b, "periodic %s rounds=%d missed=%d minslack=%d\n", name, len(p.Slack), p.MissedDeadlines(), int64(p.MinSlack()))
	}
	for _, name := range sortedKeys(s.Decoders) {
		fmt.Fprintf(&b, "decoder %s frames=%d\n", name, s.Decoders[name].FramesDecoded(horizon))
	}
	return b.String()
}

// Digest returns the hex SHA-256 of the simulation's canonical outcome.
func Digest(s *simconfig.Simulation) string {
	sum := sha256.Sum256([]byte(Canonical(s)))
	return hex.EncodeToString(sum[:])
}

// JobKey returns the content address of a simulation request: the hex
// SHA-256 of the config's canonical JSON (struct marshaling fixes field
// order; Config holds no maps) plus the instantiation seed. Two requests
// with equal keys describe the same deterministic computation, so a
// response computed for one can be served for the other byte-identically —
// the soundness argument behind hsfqd's digest-keyed cache.
func JobKey(c simconfig.Config, seed uint64) string {
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshaling config: %v", err)) // plain data; cannot fail
	}
	h := sha256.New()
	h.Write(b)
	fmt.Fprintf(h, "#seed=%d", seed)
	return hex.EncodeToString(h.Sum(nil))
}

// SweepKey is JobKey for a whole sweep spec: the content address of the
// spec's canonical JSON. Axis values are json.RawMessage, so the bytes the
// client sent participate verbatim.
func SweepKey(spec Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshaling spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte("sweep#"))
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// Metrics extracts the per-job scalar metrics that Run aggregates across
// seed replications.
func Metrics(s *simconfig.Simulation) map[string]float64 {
	m := map[string]float64{}
	st := s.Machine.Stats()
	m["work_total"] = float64(st.Work)
	m["dispatches"] = float64(st.Dispatches)
	m["preemptions"] = float64(st.Preemptions)
	m["idle_ns"] = float64(st.Idle)
	m["stolen_ns"] = float64(st.Stolen)
	if n := s.Machine.NumCores(); n > 1 {
		m["migrations"] = float64(st.Migrations)
		span := float64(s.Config.Horizon.Time())
		for c := 0; c < n; c++ {
			cs := s.Machine.CoreStats(c)
			m[fmt.Sprintf("core%d:work", c)] = float64(cs.Work)
			m[fmt.Sprintf("core%d:idle_ns", c)] = float64(cs.Idle)
			if span > 0 {
				m[fmt.Sprintf("core%d:util", c)] = 1 - float64(cs.Idle)/span
			}
		}
	}
	total := float64(st.Work)
	for _, th := range s.Threads {
		m["work:"+th.Name] = float64(th.Done)
		if total > 0 {
			m["share:"+th.Name] = float64(th.Done) / total
		}
	}
	horizon := s.Config.Horizon.Time()
	for name, p := range s.Periodics {
		m["missed:"+name] = float64(p.MissedDeadlines())
	}
	for name, d := range s.Decoders {
		m["frames:"+name] = float64(d.FramesDecoded(horizon))
	}
	return m
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
