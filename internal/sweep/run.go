package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hsfq/internal/metrics"
	"hsfq/internal/simconfig"
)

// Options parameterize a sweep run.
type Options struct {
	// Workers bounds the pool of goroutines executing jobs; <= 0 means 1.
	Workers int
	// Verify runs every job twice and reports a job error on any digest
	// mismatch, turning determinism into a checked property.
	Verify bool
	// Stream, when non-nil, receives one JSON line per job result, in job
	// order, as results become available. The bytes are identical for any
	// worker count.
	Stream io.Writer
	// CheckpointDir, when non-empty, names a checkpoint Store: jobs
	// resume from stored prefixes of their runs when possible (horizon
	// extension) and store their own final state for future sweeps. The
	// streamed and reported results are byte-identical with or without a
	// store; only wall-clock time and Report.Resumed change.
	CheckpointDir string
}

// JobResult is the outcome of one job.
type JobResult struct {
	ID      int                `json:"id"`
	Point   map[string]string  `json:"point"`
	Rep     int                `json:"rep"`
	Seed    uint64             `json:"seed"`
	Digest  string             `json:"digest,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
	// Mismatch marks a Verify failure: the job ran twice and produced two
	// different digests, a determinism violation (as opposed to an
	// execution error).
	Mismatch bool `json:"mismatch,omitempty"`
}

// Aggregate summarizes one grid point's metrics across its seed
// replications.
type Aggregate struct {
	Point   map[string]string          `json:"point"`
	Seeds   int                        `json:"seeds"`
	Metrics map[string]metrics.Summary `json:"metrics"`
}

// Report is the outcome of a whole sweep.
type Report struct {
	Name    string `json:"name"`
	Jobs    int    `json:"jobs"`
	Workers int    `json:"workers"`
	Failed  int    `json:"failed"`
	// Mismatched counts the failures that were Verify digest mismatches;
	// callers (hsfqsweep) report these distinctly, because they impeach
	// the simulator rather than the scenario.
	Mismatched int `json:"mismatched,omitempty"`
	// Resumed counts the jobs that continued from a stored checkpoint
	// instead of simulating from tick zero. It lives on the report, not
	// on JobResult, so per-job JSONL stays byte-identical with and
	// without a checkpoint store.
	Resumed    int         `json:"resumed,omitempty"`
	Results    []JobResult `json:"results"`
	Aggregates []Aggregate `json:"aggregates"`
}

// Sink consumes job results. Orderer delivers them in dense job-ID order,
// so a Sink never needs to reorder; WriterSink is the JSONL implementation
// every tool shares.
type Sink interface {
	Emit(JobResult) error
}

// WriterSink streams one canonical JSON line per result. Marshaling is
// deterministic (struct field order; map keys sort), so the bytes written
// for a given result list are identical no matter who computed the
// results — the property the sweep engine's worker-count invariance and
// the dispatcher's remote/local equivalence both rest on.
type WriterSink struct{ W io.Writer }

// Emit implements Sink.
func (s WriterSink) Emit(r JobResult) error { return writeJSONLine(s.W, r) }

// Orderer releases results to a sink in dense job-ID order regardless of
// completion order: result i is held until every result below i has been
// emitted. It also retains all results for report assembly. Not safe for
// concurrent use; callers serialize Done (the sweep engine calls it from
// its single collector loop, the dispatcher under its state lock).
type Orderer struct {
	sink    Sink // may be nil: order/collect only
	results []JobResult
	ready   []bool
	next    int
	err     error // first sink error; later emissions are dropped
}

// NewOrderer prepares an orderer for jobs with IDs in [0, n).
func NewOrderer(n int, sink Sink) *Orderer {
	return &Orderer{sink: sink, results: make([]JobResult, n), ready: make([]bool, n)}
}

// Done records one completed result and flushes the contiguous prefix of
// completed results to the sink.
func (o *Orderer) Done(r JobResult) {
	if r.ID < 0 || r.ID >= len(o.results) || o.ready[r.ID] {
		panic(fmt.Sprintf("sweep: Orderer.Done of bad or duplicate job ID %d", r.ID))
	}
	o.results[r.ID] = r
	o.ready[r.ID] = true
	for o.next < len(o.results) && o.ready[o.next] {
		if o.sink != nil && o.err == nil {
			o.err = o.sink.Emit(o.results[o.next])
		}
		o.next++
	}
}

// Results returns the result slice, valid once every job is Done.
func (o *Orderer) Results() []JobResult { return o.results }

// Err returns the first sink error, if any.
func (o *Orderer) Err() error { return o.err }

// NewReport assembles a Report from per-job results: failure and mismatch
// counts plus per-point aggregates. Shared by the in-process engine and
// the distributed dispatcher, so both report identically.
func NewReport(name string, workers int, results []JobResult) *Report {
	rep := &Report{Name: name, Jobs: len(results), Workers: workers, Results: results}
	for _, r := range results {
		if r.Error != "" {
			rep.Failed++
		}
		if r.Mismatch {
			rep.Mismatched++
		}
	}
	rep.Aggregates = aggregate(results)
	return rep
}

// Run expands the spec and executes every job across the worker pool.
// The returned report lists results in job order; the error is non-nil if
// any job failed to build, run, or verify.
func Run(spec Spec, opt Options) (*Report, error) {
	jobs, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var store *Store
	if opt.CheckpointDir != "" {
		store, err = NewStore(opt.CheckpointDir)
		if err != nil {
			return nil, err
		}
	}

	idxCh := make(chan int)
	doneCh := make(chan JobResult, len(jobs))
	var wg sync.WaitGroup
	var resumed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				r, fromCkpt := RunJobStore(jobs[i], opt.Verify, store)
				if fromCkpt {
					resumed.Add(1)
				}
				doneCh <- r
			}
		}()
	}
	go func() {
		for i := range jobs {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
		close(doneCh)
	}()

	var sink Sink
	if opt.Stream != nil {
		sink = WriterSink{opt.Stream}
	}
	ord := NewOrderer(len(jobs), sink)
	for r := range doneCh {
		ord.Done(r)
	}
	if err := ord.Err(); err != nil {
		return nil, fmt.Errorf("sweep: streaming results: %w", err)
	}
	results := ord.Results()

	rep := NewReport(spec.Name, workers, results)
	rep.Resumed = int(resumed.Load())
	if rep.Failed > 0 {
		return rep, fmt.Errorf("sweep: %d of %d job(s) failed (first: %s)", rep.Failed, len(jobs), firstError(results))
	}
	return rep, nil
}

func firstError(results []JobResult) string {
	for _, r := range results {
		if r.Error != "" {
			return r.Error
		}
	}
	return ""
}

func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v) // maps marshal with sorted keys: deterministic
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RunJob executes one job in-process (twice under verify) with nothing
// shared: the build constructs private engine, machine, structure, and
// thread state. It is the local execution authority: the sweep engine's
// workers, the dispatcher's local backend, and the dispatcher's
// remote-result verification all call it.
func RunJob(job Job, verify bool) JobResult {
	res, _ := RunJobStore(job, verify, nil)
	return res
}

// RunJobStore is RunJob with an optional checkpoint store, reporting
// whether the job resumed from a stored prefix. Under verify, the rerun
// is always executed from tick zero, so for a resumed job the comparison
// checks resume equivalence end-to-end — restored-and-continued against
// from-scratch — not merely that two executions agree.
func RunJobStore(job Job, verify bool, store *Store) (JobResult, bool) {
	res := JobResult{ID: job.ID, Point: job.Point, Rep: job.Rep, Seed: job.Seed}
	var (
		digest  string
		m       map[string]float64
		resumed bool
		err     error
	)
	if store != nil {
		digest, m, resumed, err = ExecuteConfigCheckpointed(job.Config, job.Seed, store)
	} else {
		digest, m, err = executeJob(job)
	}
	if err != nil {
		res.Error = err.Error()
		return res, false
	}
	res.Digest, res.Metrics = digest, m
	if verify {
		again, _, err := executeJob(job)
		if err != nil {
			res.Error = fmt.Sprintf("verify rerun: %v", err)
		} else if again != digest {
			res.Error = fmt.Sprintf("nondeterministic: digest %s then %s", digest, again)
			res.Mismatch = true
		}
	}
	return res, resumed
}

// executeJob is a seam over ExecuteConfig so tests can inject
// nondeterminism and execution failures.
var executeJob = func(job Job) (string, map[string]float64, error) {
	return ExecuteConfig(job.Config, job.Seed)
}

// ExecuteConfig builds the config at the given seed (0 keeps the config's
// own), runs it to its horizon, and returns the outcome digest plus the
// scalar metrics. It is the in-process execution path shared by the sweep
// engine and the hsfqd serving daemon: everything it constructs is private
// to the call, so concurrent executions cannot perturb each other.
func ExecuteConfig(c simconfig.Config, seed uint64) (string, map[string]float64, error) {
	s, err := simconfig.Build(c, simconfig.BuildOptions{Seed: seed})
	if err != nil {
		return "", nil, err
	}
	s.Run()
	return Digest(s), Metrics(s), nil
}

// aggregate groups successful results by grid point (in first-seen job
// order) and summarizes every metric across the point's replications.
func aggregate(results []JobResult) []Aggregate {
	type group struct {
		point  map[string]string
		series map[string][]float64
		seeds  int
	}
	var order []string
	groups := map[string]*group{}
	for _, r := range results {
		if r.Error != "" {
			continue
		}
		key := pointKey(r.Point)
		g, ok := groups[key]
		if !ok {
			g = &group{point: r.Point, series: map[string][]float64{}}
			groups[key] = g
			order = append(order, key)
		}
		g.seeds++
		for name, v := range r.Metrics {
			g.series[name] = append(g.series[name], v)
		}
	}
	aggs := make([]Aggregate, 0, len(order))
	for _, key := range order {
		g := groups[key]
		m := make(map[string]metrics.Summary, len(g.series))
		for name, vs := range g.series {
			m[name] = metrics.Summarize(vs)
		}
		aggs = append(aggs, Aggregate{Point: g.point, Seeds: g.seeds, Metrics: m})
	}
	return aggs
}

func pointKey(point map[string]string) string {
	keys := make([]string, 0, len(point))
	for k := range point {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, point[k])
	}
	return b.String()
}
