package checkpoint_test

import (
	"bytes"
	"fmt"
	"testing"

	"hsfq/internal/checkpoint"
	"hsfq/internal/metrics"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
	"hsfq/internal/testutil"
	"hsfq/internal/trace"
)

// dur is a shorthand for literal durations in test configs.
func dur(t sim.Time) simconfig.Duration { return simconfig.Duration(t) }

// trialConfigs is the grid the resume-equivalence property test cycles
// through: flat structures covering every registered leaf kind, plus
// hierarchical structures mixing leaf kinds under weighted inner nodes,
// with workloads chosen to exercise blocking, RNG draws (interactive,
// mpeg, lottery, poisson interrupts), deadlines, and reserves.
func trialConfigs() []simconfig.Config {
	horizon := dur(2 * sim.Second)
	rt := 20
	flat := func(leaf string, threads ...simconfig.ThreadConfig) simconfig.Config {
		return simconfig.Config{
			RateMIPS: 100,
			Horizon:  horizon,
			Nodes: []simconfig.NodeConfig{
				{Path: "/run", Weight: 1, Leaf: leaf, Quantum: dur(5 * sim.Millisecond)},
			},
			Threads: threads,
		}
	}
	loop := func(name string, w float64) simconfig.ThreadConfig {
		return simconfig.ThreadConfig{Name: name, Leaf: "/run", Weight: w}
	}
	mix := []simconfig.ThreadConfig{
		{Name: "hog", Leaf: "/run", Weight: 1},
		{Name: "faulty", Leaf: "/run", Weight: 2,
			Program: simconfig.ProgramConfig{Kind: "dhrystone", FaultEvery: 40, FaultSleep: dur(3 * sim.Millisecond)}},
		{Name: "chatty", Leaf: "/run", Weight: 1,
			Program: simconfig.ProgramConfig{Kind: "interactive", ThinkMean: dur(40 * sim.Millisecond)}},
		{Name: "pulse", Leaf: "/run", Weight: 1,
			Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 4, Off: dur(60 * sim.Millisecond)}},
	}
	periodicMix := []simconfig.ThreadConfig{
		{Name: "video", Leaf: "/run", Weight: 1,
			Program: simconfig.ProgramConfig{Kind: "periodic", Period: dur(30 * sim.Millisecond), Cost: dur(8 * sim.Millisecond)}},
		{Name: "audio", Leaf: "/run", Weight: 1,
			Program: simconfig.ProgramConfig{Kind: "periodic", Period: dur(10 * sim.Millisecond), Cost: dur(2 * sim.Millisecond)}},
	}

	cfgs := []simconfig.Config{
		flat("sfq", append([]simconfig.ThreadConfig{
			{Name: "dec", Leaf: "/run", Weight: 4,
				Program: simconfig.ProgramConfig{Kind: "mpeg", Frames: 120, Loop: true}},
		}, mix...)...),
		flat("rr", mix...),
		flat("fifo", mix[1:]...),
		flat("priority", mix...),
		flat("edf", periodicMix...),
		flat("rm", periodicMix...),
		flat("lottery", mix...),
		flat("stride", mix...),
		flat("eevdf", mix...),
	}

	// The adaptive leaves carry extra per-thread state across checkpoints
	// (mlfq: level + wait stamp with a non-default geometry so aging and
	// demotion both fire inside the horizon; drr: adaptive quantum).
	mlfq := flat("mlfq", mix...)
	mlfq.Nodes[0].Levels = 3
	mlfq.Nodes[0].Aging = dur(80 * sim.Millisecond)
	mlfq.Nodes[0].Quantum = dur(2 * sim.Millisecond)
	cfgs = append(cfgs, mlfq, flat("drr", mix...))

	svr4 := flat("svr4", mix...)
	svr4.Threads = append(svr4.Threads, simconfig.ThreadConfig{
		Name: "rtproc", Leaf: "/run", RTPriority: &rt,
		Program: simconfig.ProgramConfig{Kind: "periodic", Period: dur(50 * sim.Millisecond), Cost: dur(4 * sim.Millisecond)},
	})
	cfgs = append(cfgs, svr4)

	reserves := flat("reserves", loop("bg1", 1), loop("bg2", 1))
	reserves.Threads = append(reserves.Threads, simconfig.ThreadConfig{
		Name: "reserved", Leaf: "/run",
		ReserveCost: dur(5 * sim.Millisecond), ReservePeriod: dur(30 * sim.Millisecond),
		Program: simconfig.ProgramConfig{Kind: "periodic", Period: dur(30 * sim.Millisecond), Cost: dur(5 * sim.Millisecond)},
	})
	cfgs = append(cfgs, reserves)

	// The paper's structure: real-time and best-effort subtrees with
	// different leaf disciplines, plus interrupt load of all three kinds.
	hier := simconfig.Config{
		RateMIPS: 100,
		Horizon:  horizon,
		Nodes: []simconfig.NodeConfig{
			{Path: "/rt", Weight: 3},
			{Path: "/rt/hard", Weight: 2, Leaf: "edf"},
			{Path: "/rt/soft", Weight: 1, Leaf: "sfq", Quantum: dur(5 * sim.Millisecond)},
			{Path: "/be", Weight: 1},
			{Path: "/be/u1", Weight: 2, Leaf: "svr4"},
			{Path: "/be/u2", Weight: 1, Leaf: "lottery", Quantum: dur(10 * sim.Millisecond)},
		},
		Threads: []simconfig.ThreadConfig{
			{Name: "sensor", Leaf: "/rt/hard",
				Program: simconfig.ProgramConfig{Kind: "periodic", Period: dur(20 * sim.Millisecond), Cost: dur(3 * sim.Millisecond)}},
			{Name: "dec", Leaf: "/rt/soft", Weight: 3,
				Program: simconfig.ProgramConfig{Kind: "mpeg", Frames: 90, Loop: true}},
			{Name: "editor", Leaf: "/rt/soft", Weight: 1,
				Program: simconfig.ProgramConfig{Kind: "interactive", ThinkMean: dur(50 * sim.Millisecond)}},
			{Name: "make", Leaf: "/be/u1", Weight: 1,
				Program: simconfig.ProgramConfig{Kind: "dhrystone", FaultEvery: 60, FaultSleep: dur(2 * sim.Millisecond)}},
			{Name: "shell", Leaf: "/be/u1", Weight: 1,
				Program: simconfig.ProgramConfig{Kind: "interactive", ThinkMean: dur(80 * sim.Millisecond)}},
			{Name: "batch", Leaf: "/be/u2", Weight: 1, Start: dur(200 * sim.Millisecond),
				Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 6, Off: dur(40 * sim.Millisecond)}},
		},
		Interrupts: []simconfig.InterruptConfig{
			{Kind: "periodic", Period: dur(10 * sim.Millisecond), Service: dur(200 * sim.Microsecond)},
			{Kind: "poisson", RatePerSec: 80, Service: dur(300 * sim.Microsecond)},
			{Kind: "burst", Period: dur(500 * sim.Millisecond), Count: 5, Service: dur(150 * sim.Microsecond)},
		},
	}
	cfgs = append(cfgs, hier)

	// Multiprocessor variants: the same workloads ride on 2–3 cores under
	// each placement policy with nonzero dispatch costs, so resume
	// equivalence covers per-core segments, lastCore stamps, the
	// checkpoint's multicore extension, and the core-tagged trace
	// encoding.
	part := flat("sfq", append([]simconfig.ThreadConfig(nil), mix...)...)
	part.Cores = 2
	part.Policy = "partitioned"
	part.SwitchCost = dur(50 * sim.Microsecond)
	cfgs = append(cfgs, part)

	glob := flat("sfq", append([]simconfig.ThreadConfig(nil), mix...)...)
	glob.Cores = 3
	glob.Policy = "global"
	glob.SwitchCost = dur(20 * sim.Microsecond)
	glob.MigrationCost = dur(200 * sim.Microsecond)
	glob.Interrupts = []simconfig.InterruptConfig{
		{Kind: "poisson", RatePerSec: 120, Service: dur(150 * sim.Microsecond)},
	}
	cfgs = append(cfgs, glob)

	pinned := 1
	stealThreads := append([]simconfig.ThreadConfig(nil), mix...)
	stealThreads[0].Affinity = &pinned
	steal := flat("stride", stealThreads...)
	steal.Cores = 2
	steal.Policy = "steal"
	steal.MigrationCost = dur(300 * sim.Microsecond)
	cfgs = append(cfgs, steal)

	hierSMP := hier
	hierSMP.Cores = 2
	hierSMP.Policy = "partitioned"
	hierSMP.SwitchCost = dur(30 * sim.Microsecond)
	cfgs = append(cfgs, hierSMP)

	// A second hierarchy with the remaining leaf kinds under one root.
	hier2 := simconfig.Config{
		RateMIPS: 100,
		Horizon:  horizon,
		Nodes: []simconfig.NodeConfig{
			{Path: "/a", Weight: 2, Leaf: "stride"},
			{Path: "/b", Weight: 1, Leaf: "eevdf", Quantum: dur(4 * sim.Millisecond)},
			{Path: "/c", Weight: 1, Leaf: "rr", Quantum: dur(2 * sim.Millisecond)},
		},
		Threads: []simconfig.ThreadConfig{
			{Name: "s1", Leaf: "/a", Weight: 1},
			{Name: "s2", Leaf: "/a", Weight: 3,
				Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 3, Off: dur(30 * sim.Millisecond)}},
			{Name: "e1", Leaf: "/b", Weight: 2,
				Program: simconfig.ProgramConfig{Kind: "interactive", ThinkMean: dur(25 * sim.Millisecond)}},
			{Name: "e2", Leaf: "/b", Weight: 1},
			{Name: "r1", Leaf: "/c", Weight: 1,
				Program: simconfig.ProgramConfig{Kind: "dhrystone", FaultEvery: 25, FaultSleep: dur(1 * sim.Millisecond)}},
		},
		Interrupts: []simconfig.InterruptConfig{
			{Kind: "poisson", RatePerSec: 150, Service: dur(100 * sim.Microsecond)},
		},
	}
	return append(cfgs, hier2)
}

// runPristine executes cfg uninterrupted and returns the trace CSV, the
// outcome digest, and the summarized metrics.
func runPristine(t *testing.T, cfg simconfig.Config) ([]byte, string, string) {
	t.Helper()
	s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
	if err != nil {
		t.Fatalf("build pristine: %v", err)
	}
	rec := trace.NewRecorder(0)
	s.Machine.Listen(rec)
	s.Run()
	return csvOf(t, rec), sweep.Digest(s), summarized(s)
}

func csvOf(t *testing.T, rec *trace.Recorder) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return b.Bytes()
}

// summarized renders metrics through metrics.Summarize, the same
// aggregation the sweep engine reports, so the comparison covers the
// numbers experiments actually consume.
func summarized(s *simconfig.Simulation) string {
	m := sweep.Metrics(s)
	var b bytes.Buffer
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(&b, "%s: %v\n", k, metrics.Summarize([]float64{m[k]}))
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// TestResumeEquivalence is the subsystem's core property: snapshot a run
// at a random instant, restore into a fresh process-equivalent machine,
// continue, and the trace CSV, outcome digest, and summarized metrics
// must be byte-identical to the uninterrupted run. 100 seeded trials
// cycle through flat and hierarchical structures over every registered
// leaf kind.
func TestResumeEquivalence(t *testing.T) {
	grid := trialConfigs()
	rng := sim.NewRand(20260806)
	for trial := 0; trial < 100; trial++ {
		cfg := grid[trial%len(grid)]
		cfg.Seed = uint64(1000 + trial)
		horizon := cfg.Horizon.Time()
		at := 1 + sim.Time(rng.Int63n(int64(horizon-1)))

		wantCSV, wantDigest, wantMetrics := runPristine(t, cfg)

		s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		rec := trace.NewRecorder(0)
		s.Machine.Listen(rec)
		s.Machine.Run(at)
		data, err := checkpoint.Save(s, checkpoint.Options{Recorder: rec})
		if err != nil {
			t.Fatalf("trial %d: save at %v: %v", trial, at, err)
		}

		info, err := checkpoint.Peek(data)
		if err != nil {
			t.Fatalf("trial %d: peek: %v", trial, err)
		}
		if info.At != s.Engine.Now() || info.Seed != cfg.Seed || !info.HasTrace {
			t.Fatalf("trial %d: peek info %+v, want at=%v seed=%d trace", trial, info, s.Engine.Now(), cfg.Seed)
		}

		rec2 := trace.NewRecorder(0)
		s2, err := checkpoint.Restore(data, checkpoint.Options{Recorder: rec2})
		if err != nil {
			t.Fatalf("trial %d: restore at %v: %v", trial, at, err)
		}
		s2.Machine.Listen(rec2)
		s2.Machine.Run(horizon)
		s2.Machine.Flush()

		if got := csvOf(t, rec2); !bytes.Equal(got, wantCSV) {
			t.Fatalf("trial %d (%s @ %v): resumed trace differs from pristine\n%s", trial, leafNames(cfg), at, testutil.DiffBytes(got, wantCSV))
		}
		if got := sweep.Digest(s2); got != wantDigest {
			t.Fatalf("trial %d (%s @ %v): resumed digest %s, pristine %s", trial, leafNames(cfg), at, got, wantDigest)
		}
		if got := summarized(s2); got != wantMetrics {
			t.Fatalf("trial %d (%s @ %v): resumed metrics differ:\n%s\nvs pristine:\n%s", trial, leafNames(cfg), at, got, wantMetrics)
		}
	}
}

// TestResumeAcrossEventQueues pins the queue-agnosticism of checkpoints:
// snapshots store pending events abstractly (time, seq, owner), never
// queue internals, so a run saved under the heap must restore under the
// timing wheel — and vice versa — with trace, digest, and metrics
// byte-identical to the uninterrupted run under the original queue.
func TestResumeAcrossEventQueues(t *testing.T) {
	grid := trialConfigs()
	rng := sim.NewRand(20260808)
	for trial := 0; trial < len(grid); trial++ {
		cfg := grid[trial]
		cfg.Seed = uint64(5000 + trial)
		// Alternate which queue saves and which restores.
		saveQ, restoreQ := "heap", "wheel"
		if trial%2 == 1 {
			saveQ, restoreQ = "wheel", "heap"
		}
		cfg.EventQueue = saveQ
		horizon := cfg.Horizon.Time()
		at := 1 + sim.Time(rng.Int63n(int64(horizon-1)))

		wantCSV, wantDigest, wantMetrics := runPristine(t, cfg)

		s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		rec := trace.NewRecorder(0)
		s.Machine.Listen(rec)
		s.Machine.Run(at)
		data, err := checkpoint.Save(s, checkpoint.Options{Recorder: rec})
		if err != nil {
			t.Fatalf("trial %d: save under %s at %v: %v", trial, saveQ, at, err)
		}

		rec2 := trace.NewRecorder(0)
		s2, err := checkpoint.Restore(data, checkpoint.Options{Recorder: rec2, EventQueue: restoreQ})
		if err != nil {
			t.Fatalf("trial %d: restore under %s at %v: %v", trial, restoreQ, at, err)
		}
		if s2.Config.EventQueue != restoreQ {
			t.Fatalf("trial %d: restored config queue %q, want override %q", trial, s2.Config.EventQueue, restoreQ)
		}
		s2.Machine.Listen(rec2)
		s2.Machine.Run(horizon)
		s2.Machine.Flush()

		if got := csvOf(t, rec2); !bytes.Equal(got, wantCSV) {
			t.Fatalf("trial %d (%s, %s→%s @ %v): cross-queue resumed trace differs\n%s",
				trial, leafNames(cfg), saveQ, restoreQ, at, testutil.DiffBytes(got, wantCSV))
		}
		if got := sweep.Digest(s2); got != wantDigest {
			t.Fatalf("trial %d (%s, %s→%s @ %v): digest %s, pristine %s",
				trial, leafNames(cfg), saveQ, restoreQ, at, got, wantDigest)
		}
		if got := summarized(s2); got != wantMetrics {
			t.Fatalf("trial %d (%s, %s→%s @ %v): metrics differ:\n%s\nvs pristine:\n%s",
				trial, leafNames(cfg), saveQ, restoreQ, at, got, wantMetrics)
		}
	}
}

// TestResumeFromSelfCheckpointIsCanonical re-saves immediately after a
// restore and expects byte-identical checkpoints: restore must
// reconstruct the exact internal encoding, not merely equivalent
// behaviour.
func TestResumeFromSelfCheckpointIsCanonical(t *testing.T) {
	for i, cfg := range trialConfigs() {
		cfg.Seed = uint64(77 + i)
		s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
		if err != nil {
			t.Fatalf("config %d: build: %v", i, err)
		}
		s.Machine.Run(cfg.Horizon.Time() / 3)
		data, err := checkpoint.Save(s, checkpoint.Options{})
		if err != nil {
			t.Fatalf("config %d: save: %v", i, err)
		}
		s2, err := checkpoint.Restore(data, checkpoint.Options{})
		if err != nil {
			t.Fatalf("config %d: restore: %v", i, err)
		}
		again, err := checkpoint.Save(s2, checkpoint.Options{})
		if err != nil {
			t.Fatalf("config %d: re-save: %v", i, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("config %d (%s): checkpoint not canonical across restore", i, leafNames(cfg))
		}
	}
}

func leafNames(cfg simconfig.Config) string {
	var b bytes.Buffer
	for _, nc := range cfg.Nodes {
		if nc.Leaf != "" {
			if b.Len() > 0 {
				b.WriteByte('+')
			}
			b.WriteString(nc.Leaf)
		}
	}
	return b.String()
}
