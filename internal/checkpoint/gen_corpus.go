//go:build ignore

// gen_corpus regenerates the checked-in fuzz corpus for
// FuzzDecodeCheckpoint. Run it from the repository root after changing
// the checkpoint encoding:
//
//	go run ./internal/checkpoint/gen_corpus.go
//
// The corpus pins the interesting shapes — valid checkpoints with and
// without a trace section, truncations, version skew, bad magic, and
// bare payloads that exercise the decoders past the integrity hash — so
// CI's fuzz smoke starts from real structure instead of random bytes.
package main

import (
	"crypto/sha256"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hsfq/internal/checkpoint"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

func main() {
	dir := filepath.Join("internal", "checkpoint", "testdata", "fuzz", "FuzzDecodeCheckpoint")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	plain := build(false)
	traced := build(true)
	feedback := buildFeedback()
	payload := plain[len(checkpoint.Magic)+sha256.Size:]

	skew := append([]byte{}, plain...)
	skew[len(checkpoint.Magic)+sha256.Size] ^= 0x03

	flipped := append([]byte{}, payload...)
	flipped[len(flipped)/2] ^= 0x20

	entries := map[string][]byte{
		"valid-plain":       plain,
		"valid-traced":      traced,
		"truncated-frame":   plain[:len(plain)-9],
		"truncated-header":  plain[:20],
		"bad-magic":         append([]byte("NOTACKPT"), plain[8:]...),
		"version-skew":      skew,
		"bare-payload":      payload,
		"payload-flipped":   flipped,
		"payload-truncated": payload[:2*len(payload)/3],
		"valid-feedback":    feedback,
		"feedback-payload":  feedback[len(checkpoint.Magic)+sha256.Size:],
	}
	for name, data := range entries {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d corpus entries to %s\n", len(entries), dir)
}

// buildFeedback checkpoints a run over the adaptive leaves (mlfq with
// non-default geometry, drr) so the corpus carries their Stater encodings.
func buildFeedback() []byte {
	c := simconfig.Config{
		RateMIPS: 100,
		Horizon:  simconfig.Duration(200 * sim.Millisecond),
		Seed:     7,
		Nodes: []simconfig.NodeConfig{
			{Path: "/fb", Weight: 2, Leaf: "mlfq", Levels: 3,
				Quantum: simconfig.Duration(2 * sim.Millisecond),
				Aging:   simconfig.Duration(40 * sim.Millisecond)},
			{Path: "/rr", Weight: 1, Leaf: "drr", Quantum: simconfig.Duration(3 * sim.Millisecond)},
		},
		Threads: []simconfig.ThreadConfig{
			{Name: "a", Leaf: "/fb", Weight: 1},
			{Name: "b", Leaf: "/fb", Weight: 1,
				Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 3, Off: simconfig.Duration(10 * sim.Millisecond)}},
			{Name: "c", Leaf: "/rr", Weight: 1,
				Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 2, Off: simconfig.Duration(5 * sim.Millisecond)}},
		},
	}
	s, err := simconfig.Build(c, simconfig.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	s.Machine.Run(100 * sim.Millisecond)
	data, err := checkpoint.Save(s, checkpoint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return data
}

func build(withTrace bool) []byte {
	c := simconfig.Config{
		RateMIPS: 100,
		Horizon:  simconfig.Duration(200 * sim.Millisecond),
		Seed:     7,
		Nodes: []simconfig.NodeConfig{
			{Path: "/run", Weight: 1, Leaf: "sfq", Quantum: simconfig.Duration(5 * sim.Millisecond)},
		},
		Threads: []simconfig.ThreadConfig{
			{Name: "a", Leaf: "/run", Weight: 1},
			{Name: "b", Leaf: "/run", Weight: 2,
				Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 3, Off: simconfig.Duration(10 * sim.Millisecond)}},
		},
		Interrupts: []simconfig.InterruptConfig{
			{Kind: "periodic", Period: simconfig.Duration(7 * sim.Millisecond), Service: simconfig.Duration(100 * sim.Microsecond)},
		},
	}
	s, err := simconfig.Build(c, simconfig.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	opt := checkpoint.Options{}
	if withTrace {
		rec := trace.NewRecorder(0)
		s.Machine.Listen(rec)
		opt.Recorder = rec
	}
	s.Machine.Run(100 * sim.Millisecond)
	data, err := checkpoint.Save(s, opt)
	if err != nil {
		log.Fatal(err)
	}
	return data
}
