// Package checkpoint serializes the complete mutable state of a running
// simulation into a versioned, self-describing binary snapshot and
// restores it into a freshly rebuilt simulation such that the resumed
// run is byte-identical to an uninterrupted one — resume equivalence.
//
// A checkpoint is config + delta: simconfig.Build is deterministic, so
// the snapshot embeds the effective Config JSON and only the state that
// diverges from a fresh build — the virtual clock and event-sequence
// counters, per-thread accounting and program positions, pending-event
// descriptors, every scheduler's tags and queues, and every RNG stream.
// Restore rebuilds from the embedded config, drops the build's initial
// events (Engine.Reset), and overlays the saved delta; pending events
// are re-armed under their original sequence numbers, so the restored
// engine is indistinguishable from the saved one and save→restore→save
// is a byte-level fixed point.
//
// File format:
//
//	"HSFQCKP1" | sha256(payload) | payload
//	payload = version u64, then sections {name string, body blob}
//	          terminated by an "end" section
//
// Sections: "config" (effective Config JSON), "state" (engine + machine
// + scheduler delta), optional "trace" (recorder event log, so a resumed
// run emits the full logical trace). Unknown sections are skipped, so
// old readers tolerate new writers; the version number gates encoding
// changes to the known sections. The leading hash rejects truncated or
// corrupt files before any decoding happens.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

// Magic identifies checkpoint files; the trailing digit is the framing
// generation, not the payload version.
const Magic = "HSFQCKP1"

// Version is the payload encoding version this build reads and writes.
const Version = 1

// maxSections bounds the section loop against hostile inputs.
const maxSections = 64

// Options parameterize Save and Restore.
type Options struct {
	// Recorder, when non-nil, is saved into (or restored from) the
	// checkpoint's trace section, so the resumed run reproduces the FULL
	// event log of the logical run rather than just the tail.
	Recorder *trace.Recorder
	// EventQueue, when non-empty, overrides the embedded config's
	// event_queue on Restore. Snapshots store pending events abstractly
	// (time, seq, owner), never queue internals, so a run saved under one
	// queue restores under another byte-identically; the override lets a
	// resume switch engines without editing the checkpoint. It is ignored
	// by Save. Note the restored Simulation's Config carries the override,
	// so a later Save embeds the new choice.
	EventQueue string
}

// Snapshot appends the mutable-state delta — engine clock and counters,
// machine, and every scheduling structure (one per core on a partitioned
// or stealing multicore build) — to e. Once e and the schedulers' scratch
// buffers are warm it allocates nothing, so periodic checkpointing does
// not disturb the zero-allocation scheduling spine.
func Snapshot(s *simconfig.Simulation, e *sim.Enc) error {
	e.Time(s.Engine.Now())
	e.U64(s.Engine.Seq())
	e.U64(s.Engine.Fired())
	if err := s.Machine.SaveState(e); err != nil {
		return err
	}
	for _, st := range s.Structures {
		if err := st.SaveState(e); err != nil {
			return err
		}
	}
	return nil
}

// Save serializes the simulation into a framed checkpoint. It must be
// called at an event boundary: between Machine.Run calls, or from an
// engine event outside any program callback.
func Save(s *simconfig.Simulation, opt Options) ([]byte, error) {
	cfg, err := json.Marshal(s.Config)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: config: %w", err)
	}
	var body sim.Enc
	if err := Snapshot(s, &body); err != nil {
		return nil, err
	}

	var p sim.Enc
	p.U64(Version)
	p.Str("config")
	p.Blob(cfg)
	p.Str("state")
	p.Blob(body.Bytes())
	if opt.Recorder != nil {
		var tb sim.Enc
		opt.Recorder.SaveState(&tb)
		p.Str("trace")
		p.Blob(tb.Bytes())
	}
	p.Str("end")
	p.Blob(nil)

	payload := p.Bytes()
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(Magic)+sha256.Size+len(payload))
	out = append(out, Magic...)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out, nil
}

// sections is a parsed checkpoint frame.
type sections struct {
	config   []byte
	state    []byte
	trace    []byte
	hasTrace bool
}

func parse(data []byte) (*sections, error) {
	if len(data) < len(Magic)+sha256.Size {
		return nil, fmt.Errorf("checkpoint: truncated header (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:len(Magic)])
	}
	want := data[len(Magic) : len(Magic)+sha256.Size]
	payload := data[len(Magic)+sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("checkpoint: payload hash mismatch (corrupt or truncated)")
	}
	d := sim.NewDec(payload)
	version := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (this build reads %d)", version, Version)
	}
	sc := &sections{}
	for i := 0; ; i++ {
		if i >= maxSections {
			return nil, fmt.Errorf("checkpoint: more than %d sections", maxSections)
		}
		name := d.Str()
		body := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		switch name {
		case "end":
			if d.Remaining() != 0 {
				return nil, fmt.Errorf("checkpoint: %d bytes after end section", d.Remaining())
			}
			if sc.config == nil || sc.state == nil {
				return nil, fmt.Errorf("checkpoint: missing config or state section")
			}
			return sc, nil
		case "config":
			sc.config = body
		case "state":
			sc.state = body
		case "trace":
			sc.trace, sc.hasTrace = body, true
		default:
			// Forward compatibility: a newer writer may add sections this
			// reader does not know; skipping them is safe because the
			// known sections are self-contained.
		}
	}
}

// Restore rebuilds the checkpointed simulation: Build from the embedded
// config, then overlay the saved state. The returned simulation's clock
// stands at the checkpoint instant; continue it with
// Machine.Run(horizon) followed by Machine.Flush, exactly like a fresh
// run.
func Restore(data []byte, opt Options) (*simconfig.Simulation, error) {
	sc, err := parse(data)
	if err != nil {
		return nil, err
	}
	var cfg simconfig.Config
	if err := json.Unmarshal(sc.config, &cfg); err != nil {
		return nil, fmt.Errorf("checkpoint: embedded config: %w", err)
	}
	if opt.EventQueue != "" {
		cfg.EventQueue = opt.EventQueue
	}
	s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: rebuild: %w", err)
	}
	if err := RestoreState(s, sc.state); err != nil {
		return nil, err
	}
	if opt.Recorder != nil {
		if !sc.hasTrace {
			return nil, fmt.Errorf("checkpoint: no trace section; run the checkpointing side with tracing on")
		}
		// The trace encoding is core-tagged iff the machine was multicore;
		// the recorder must know the layout before it decodes.
		opt.Recorder.SetNumCores(cfg.NumCores())
		if err := opt.Recorder.LoadState(sim.NewDec(sc.trace)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// RestoreState overlays a state delta captured by Snapshot onto a
// freshly built simulation of the same config.
func RestoreState(s *simconfig.Simulation, state []byte) error {
	d := sim.NewDec(state)
	now := d.Time()
	seq := d.U64()
	fired := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if now < 0 {
		return fmt.Errorf("checkpoint: negative clock %v", now)
	}
	byID := make(map[int]*sched.Thread, len(s.Threads))
	for _, t := range s.Threads {
		byID[t.ID] = t
	}
	resolve := func(id int) *sched.Thread { return byID[id] }
	s.Engine.Reset(now, seq, fired)
	if err := s.Machine.LoadState(d, resolve); err != nil {
		return err
	}
	for _, st := range s.Structures {
		if err := st.LoadState(d, resolve); err != nil {
			return err
		}
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("checkpoint: %d trailing bytes in state section", d.Remaining())
	}
	return nil
}

// Info summarizes a checkpoint without rebuilding the simulation.
type Info struct {
	// At is the simulated instant the snapshot was taken.
	At sim.Time
	// Seed and Horizon come from the embedded effective config.
	Seed     uint64
	Horizon  sim.Time
	HasTrace bool
	// Config is the full embedded configuration.
	Config simconfig.Config
}

// Peek parses a checkpoint's frame and headers only.
func Peek(data []byte) (Info, error) {
	sc, err := parse(data)
	if err != nil {
		return Info{}, err
	}
	var cfg simconfig.Config
	if err := json.Unmarshal(sc.config, &cfg); err != nil {
		return Info{}, fmt.Errorf("checkpoint: embedded config: %w", err)
	}
	d := sim.NewDec(sc.state)
	at := d.Time()
	if err := d.Err(); err != nil {
		return Info{}, err
	}
	return Info{At: at, Seed: cfg.Seed, Horizon: cfg.Horizon.Time(), HasTrace: sc.hasTrace, Config: cfg}, nil
}
