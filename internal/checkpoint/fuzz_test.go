package checkpoint_test

import (
	"crypto/sha256"
	"testing"

	"hsfq/internal/checkpoint"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

// tinyConfig is the small simulation the fuzz seeds checkpoint. It avoids
// the mpeg program on purpose: a mutated frame count in the embedded
// config JSON could make the rebuild allocate a huge cost trace, which is
// an out-of-memory hazard for the fuzzer, not a decoding bug.
func tinyConfig() simconfig.Config {
	return simconfig.Config{
		RateMIPS: 100,
		Horizon:  simconfig.Duration(200 * sim.Millisecond),
		Seed:     7,
		Nodes: []simconfig.NodeConfig{
			{Path: "/run", Weight: 1, Leaf: "sfq", Quantum: simconfig.Duration(5 * sim.Millisecond)},
		},
		Threads: []simconfig.ThreadConfig{
			{Name: "a", Leaf: "/run", Weight: 1},
			{Name: "b", Leaf: "/run", Weight: 2,
				Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 3, Off: simconfig.Duration(10 * sim.Millisecond)}},
		},
		Interrupts: []simconfig.InterruptConfig{
			{Kind: "periodic", Period: simconfig.Duration(7 * sim.Millisecond), Service: simconfig.Duration(100 * sim.Microsecond)},
		},
	}
}

// tinySMPConfig is the multicore sibling of tinyConfig: two cores under
// the stealing policy with both dispatch costs nonzero, so its
// checkpoints carry the per-core state extension and core-tagged trace
// rows for the fuzzer to mutate.
func tinySMPConfig() simconfig.Config {
	cfg := tinyConfig()
	cfg.Cores = 2
	cfg.Policy = "steal"
	cfg.SwitchCost = simconfig.Duration(50 * sim.Microsecond)
	cfg.MigrationCost = simconfig.Duration(100 * sim.Microsecond)
	return cfg
}

// tinyFeedbackConfig covers the adaptive leaves: an mlfq node with
// non-default levels and aging next to a drr node, so checkpoints carry
// both leaves' Stater encodings (per-thread levels, wait stamps, adaptive
// quanta) for the fuzzer to mutate.
func tinyFeedbackConfig() simconfig.Config {
	cfg := tinyConfig()
	cfg.Nodes = []simconfig.NodeConfig{
		{Path: "/fb", Weight: 2, Leaf: "mlfq", Levels: 3,
			Quantum: simconfig.Duration(2 * sim.Millisecond),
			Aging:   simconfig.Duration(40 * sim.Millisecond)},
		{Path: "/rr", Weight: 1, Leaf: "drr", Quantum: simconfig.Duration(3 * sim.Millisecond)},
	}
	cfg.Threads = []simconfig.ThreadConfig{
		{Name: "a", Leaf: "/fb", Weight: 1},
		{Name: "b", Leaf: "/fb", Weight: 1,
			Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 3, Off: simconfig.Duration(10 * sim.Millisecond)}},
		{Name: "c", Leaf: "/rr", Weight: 1,
			Program: simconfig.ProgramConfig{Kind: "onoff", Bursts: 2, Off: simconfig.Duration(5 * sim.Millisecond)}},
	}
	return cfg
}

func tinyCheckpoint(tb testing.TB, withTrace bool) []byte {
	return checkpointOf(tb, tinyConfig(), withTrace)
}

func checkpointOf(tb testing.TB, cfg simconfig.Config, withTrace bool) []byte {
	tb.Helper()
	s, err := simconfig.Build(cfg, simconfig.BuildOptions{})
	if err != nil {
		tb.Fatalf("build: %v", err)
	}
	opt := checkpoint.Options{}
	if withTrace {
		rec := trace.NewRecorder(0)
		s.Machine.Listen(rec)
		opt.Recorder = rec
	}
	s.Machine.Run(100 * sim.Millisecond)
	data, err := checkpoint.Save(s, opt)
	if err != nil {
		tb.Fatalf("save: %v", err)
	}
	return data
}

// reframe wraps raw bytes as a checkpoint payload with a CORRECT hash, so
// fuzz mutations reach the section and state decoders instead of dying at
// the integrity gate.
func reframe(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(checkpoint.Magic)+len(sum)+len(payload))
	out = append(out, checkpoint.Magic...)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// FuzzDecodeCheckpoint asserts the decode side never panics: truncated,
// bit-flipped, version-skewed, or wholly hostile bytes must come back as
// clean errors. Each input is tried both as a raw file (exercising the
// magic/hash framing) and re-framed with a valid hash (exercising the
// config, machine, scheduler, and trace decoders underneath).
func FuzzDecodeCheckpoint(f *testing.F) {
	plain := tinyCheckpoint(f, false)
	traced := tinyCheckpoint(f, true)
	smp := checkpointOf(f, tinySMPConfig(), false)
	smpTraced := checkpointOf(f, tinySMPConfig(), true)
	feedback := checkpointOf(f, tinyFeedbackConfig(), false)
	f.Add(plain)
	f.Add(traced)
	f.Add(smp)
	f.Add(smpTraced)
	f.Add(feedback)
	f.Add(smp[len(checkpoint.Magic)+sha256.Size:])      // bare multicore payload
	f.Add(feedback[len(checkpoint.Magic)+sha256.Size:]) // bare mlfq/drr payload
	f.Add(plain[:len(plain)-9])
	f.Add([]byte(checkpoint.Magic))
	f.Add(plain[len(checkpoint.Magic)+sha256.Size:]) // bare payload: re-framed branch decodes it fully
	skew := append([]byte{}, plain...)
	skew[len(checkpoint.Magic)+sha256.Size] ^= 0x03 // version word
	f.Add(skew)

	f.Fuzz(func(t *testing.T, b []byte) {
		for _, data := range [][]byte{b, reframe(b)} {
			if s, err := checkpoint.Restore(data, checkpoint.Options{}); err == nil {
				if s == nil {
					t.Fatal("Restore returned nil simulation without error")
				}
				// A checkpoint that decodes must also re-encode.
				if _, err := checkpoint.Save(s, checkpoint.Options{}); err != nil {
					t.Fatalf("re-save of restored checkpoint failed: %v", err)
				}
			}
			rec := trace.NewRecorder(0)
			checkpoint.Restore(data, checkpoint.Options{Recorder: rec})
			if _, err := checkpoint.Peek(data); err == nil && len(data) < len(checkpoint.Magic)+sha256.Size {
				t.Fatal("Peek accepted an impossibly short input")
			}
		}
	})
}

// TestDecodeCheckpointHostileInputs is the deterministic slice of the
// fuzz property that runs on every plain `go test`: systematic
// truncations and bit flips of a real checkpoint must all fail cleanly.
func TestDecodeCheckpointHostileInputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  simconfig.Config
	}{{"uniprocessor", tinyConfig()}, {"smp", tinySMPConfig()}, {"feedback", tinyFeedbackConfig()}} {
		t.Run(tc.name, func(t *testing.T) { hostileInputs(t, checkpointOf(t, tc.cfg, true)) })
	}
}

func hostileInputs(t *testing.T, data []byte) {
	if _, err := checkpoint.Restore(data, checkpoint.Options{}); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := checkpoint.Restore(data[:cut], checkpoint.Options{}); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for pos := 0; pos < len(data); pos += 11 {
		mut := append([]byte{}, data...)
		mut[pos] ^= 0x40
		// Flips are caught by the hash; the assertion is "no panic, and
		// never a silently different simulation".
		if _, err := checkpoint.Restore(mut, checkpoint.Options{}); err == nil && pos >= len(checkpoint.Magic)+sha256.Size {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}

	// Same flips applied to the bare payload and re-framed with a valid
	// hash: now the section and state decoders see the damage directly.
	payload := data[len(checkpoint.Magic)+sha256.Size:]
	for pos := 0; pos < len(payload); pos += 3 {
		mut := append([]byte{}, payload...)
		mut[pos] ^= 0x10
		checkpoint.Restore(reframe(mut), checkpoint.Options{}) // must not panic
	}
	for cut := 0; cut < len(payload); cut += 5 {
		if _, err := checkpoint.Restore(reframe(payload[:cut]), checkpoint.Options{}); err == nil {
			t.Fatalf("re-framed truncation to %d bytes accepted", cut)
		}
	}
}
