module hsfq

go 1.22
