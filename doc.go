// Package hsfq is a from-scratch reproduction of "A Hierarchical CPU
// Scheduler for Multimedia Operating Systems" (Goyal, Guo, Vin; OSDI '96):
// Start-time Fair Queuing, the hierarchical scheduling structure with its
// hsfq_* operations, the leaf schedulers and baselines the paper discusses,
// and a deterministic CPU simulator that re-runs every figure of the
// paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// implementation lives under internal/; cmd/experiments regenerates the
// figures and bench_test.go benchmarks each of them plus the scheduling
// hot paths.
package hsfq
