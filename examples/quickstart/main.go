// Quickstart: build a two-class scheduling structure, run two CPU-bound
// threads with weights 1 and 2, and watch SFQ deliver a 1:2 split.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func main() {
	// 1. A scheduling structure: one SFQ leaf under the root.
	structure := core.NewStructure()
	leafID, err := structure.Mknod("apps", core.RootID, 1, sched.NewSFQ(10*sim.Millisecond))
	if err != nil {
		log.Fatal(err)
	}

	// 2. A simulated 100 MIPS machine driven by the structure.
	machine := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, structure)

	// 3. Two always-runnable threads with weights 1 and 2.
	light := sched.NewThread(1, "light", 1)
	heavy := sched.NewThread(2, "heavy", 2)
	for _, t := range []*sched.Thread{light, heavy} {
		if err := structure.Attach(t, leafID); err != nil {
			log.Fatal(err)
		}
		machine.Add(t, cpu.Forever(cpu.Compute(1_000_000)), 0)
	}

	// 4. Run ten simulated seconds.
	machine.Run(10 * sim.Second)
	machine.Flush()

	fmt.Println(structure.String())
	fmt.Printf("light: %d instructions\n", light.Done)
	fmt.Printf("heavy: %d instructions\n", heavy.Done)
	fmt.Printf("ratio: %.3f (weights 1:2)\n", float64(heavy.Done)/float64(light.Done))
}
