// Inversion: the §4 priority-inversion scenario and the paper's remedy.
// A low-weight thread holds a lock a high-weight thread needs while a
// heavy CPU hog runs in the same SFQ class. Without weight transfer the
// holder crawls through its critical section at its own small share and
// the important thread waits behind it; with the paper's transfer the
// holder temporarily runs at the blocked thread's weight.
//
//	go run ./examples/inversion
package main

import (
	"fmt"

	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/synch"
)

func run(transfer bool) (waits []sim.Time) {
	leaf := sched.NewSFQ(sim.Millisecond)
	machine := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, leaf)
	var donate *sched.SFQ
	if transfer {
		donate = leaf
	}
	mu := synch.NewMutex("shared", machine, donate)

	// A low-weight logger grabs the lock for 30 ms of work at a time.
	low := sched.NewThread(1, "logger", 1)
	machine.Add(low, &synch.CriticalLoop{
		Mutex: mu, Thread: low,
		CS:    cpu.DefaultRate.WorkFor(30 * sim.Millisecond),
		Think: 10 * sim.Millisecond,
	}, 0)

	// A heavy background hog, weight 8.
	hog := sched.NewThread(2, "hog", 8)
	machine.Add(hog, cpu.Forever(cpu.Compute(1_000_000)), 0)

	// The interactive UI thread (weight 16) needs the same lock briefly,
	// 20 times a second.
	high := sched.NewThread(3, "ui", 16)
	ui := &synch.CriticalLoop{
		Mutex: mu, Thread: high,
		CS:    cpu.DefaultRate.WorkFor(500 * sim.Microsecond),
		Think: 50 * sim.Millisecond,
	}
	machine.Add(high, ui, 5*sim.Millisecond)

	machine.Run(20 * sim.Second)
	return ui.AcquireDelays
}

func main() {
	without := metrics.Summarize(metrics.Durations(run(false)))
	with := metrics.Summarize(metrics.Durations(run(true)))

	fmt.Println("UI thread's lock-acquisition delay (ms) over 20 s:")
	tbl := metrics.NewTable("configuration", "acquisitions", "p50", "p90", "max")
	tbl.AddRow("no weight transfer", without.N, without.P50, without.P90, without.Max)
	tbl.AddRow("weight transfer (§4)", with.N, with.P50, with.P90, with.Max)
	fmt.Print(tbl.String())
	fmt.Printf("\nwith the blocked thread's weight donated to the lock holder, the\n")
	fmt.Printf("holder finishes its critical section %.1fx faster in the worst case.\n",
		without.Max/with.Max)
}
