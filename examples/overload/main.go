// Overload: what happens when the soft real-time class is overbooked —
// the situation §1 says a multimedia OS must survive. Five paced MPEG
// decoders are admitted into a soft real-time class sized for three;
// hierarchical partitioning confines the damage: the hard real-time class
// keeps every deadline and the best-effort class keeps its full share,
// while only the overbooked decoders degrade (missing some frames).
//
//	go run ./examples/overload
package main

import (
	"fmt"
	"log"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func main() {
	const horizon = 30 * sim.Second
	structure := core.NewStructure()
	mk := func(name string, w float64, leaf sched.Scheduler) core.NodeID {
		id, err := structure.Mknod(name, core.RootID, w, leaf)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	hardID := mk("hard", 1, sched.NewRM(25*sim.Millisecond))
	softID := mk("soft", 4, sched.NewSFQ(10*sim.Millisecond))
	beID := mk("best-effort", 5, sched.NewSFQ(10*sim.Millisecond))

	eng := sim.NewEngine()
	machine := cpu.NewMachine(eng, cpu.DefaultRate, structure)
	rng := sim.NewRand(7)

	// Hard real-time: a 5 ms / 100 ms control loop (50% of the hard
	// class's 10% share).
	control := &workload.Periodic{Period: 100 * sim.Millisecond, Cost: cpu.DefaultRate.WorkFor(5 * sim.Millisecond)}
	rt := sched.NewThread(1, "control", 1)
	rt.Period = control.Period
	if err := structure.Attach(rt, hardID); err != nil {
		log.Fatal(err)
	}
	machine.Add(rt, control, 0)

	// Soft real-time: five 30 fps decoders of a lighter clip. Mean demand
	// (~33% of the CPU) fits the class's 40% share, but complex scenes
	// need up to ~1.8x the mean — transient overload, the regime §1 says
	// overbooking creates.
	gen := workload.DefaultMPEG(int64(cpu.DefaultRate), rng)
	gen.IMean, gen.PMean, gen.BMean = gen.IMean*2/10, gen.PMean*2/10, gen.BMean*2/10
	var paced []*workload.PacedDecoder
	for i := 0; i < 5; i++ {
		d := workload.NewPacedDecoder(gen.Trace(int(horizon/sim.Second)*30), 33*sim.Millisecond)
		paced = append(paced, d)
		t := sched.NewThread(10+i, fmt.Sprintf("decoder%d", i), 1)
		if err := structure.Attach(t, softID); err != nil {
			log.Fatal(err)
		}
		machine.Add(t, d, 0)
	}

	// Best effort: two hogs that must not starve.
	hogs := make([]*sched.Thread, 2)
	for i := range hogs {
		hogs[i] = sched.NewThread(20+i, "hog", 1)
		if err := structure.Attach(hogs[i], beID); err != nil {
			log.Fatal(err)
		}
		machine.Add(hogs[i], workload.CPUBound(1_000_000), 0)
	}

	machine.Run(horizon)
	machine.Flush()

	fmt.Println("soft class transiently overloaded by scene bursts; per-decoder frame deadlines:")
	tbl := metrics.NewTable("decoder", "frames", "missed", "miss %")
	for i, d := range paced {
		n := len(d.Lateness)
		tbl.AddRow(fmt.Sprintf("decoder%d", i), n, d.MissedDeadlines(),
			100*float64(d.MissedDeadlines())/float64(n))
	}
	fmt.Print(tbl.String())

	fmt.Printf("\nhard real-time: %d rounds, %d missed deadlines, min slack %v\n",
		len(control.Slack), control.MissedDeadlines(), control.MinSlack())
	beShare := float64(hogs[0].Done+hogs[1].Done) / float64(machine.Stats().Work)
	fmt.Printf("best-effort share: %.1f%% (entitled ~50%%)\n", 100*beShare)
	fmt.Println("\nthe overload is confined to the class that overbooked —")
	fmt.Println("exactly the protection hierarchical partitioning promises.")
}
