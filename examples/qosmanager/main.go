// Qosmanager: the Fig. 4 control loop in action. A QoS manager admits
// hard real-time, soft real-time and best-effort applications with
// class-appropriate admission control, refuses what would break
// guarantees, and grows the soft class when a video conference starts —
// the paper's own motivating policy for dynamic bandwidth allocation.
//
//	go run ./examples/qosmanager
package main

import (
	"fmt"
	"log"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/qosmgr"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func main() {
	structure := core.NewStructure()
	cfg := qosmgr.DefaultConfig(cpu.DefaultRate)
	mgr, err := qosmgr.New(structure, cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng := sim.NewEngine()
	machine := cpu.NewMachine(eng, cpu.DefaultRate, structure)
	rng := sim.NewRand(99)
	ms := func(v int64) sched.Work { return cpu.DefaultRate.WorkFor(sim.Time(v) * sim.Millisecond) }

	// A hard real-time sensor task: deterministic admission control.
	sensorProg := &workload.Periodic{Period: 50 * sim.Millisecond, Cost: ms(3)}
	sensor := sched.NewThread(1, "sensor", 1)
	report(mgr.AdmitHard(sensor, ms(3), 50*sim.Millisecond), "hard: sensor (3ms/50ms)")
	machine.Add(sensor, sensorProg, 0)

	// A second hard task that would overflow the class: refused.
	greedy := sched.NewThread(2, "greedy", 1)
	report(mgr.AdmitHard(greedy, ms(40), 100*sim.Millisecond), "hard: greedy (40ms/100ms)")

	// Two soft decoders fit under the statistical (overbooked) test.
	for i := 0; i < 2; i++ {
		d := sched.NewThread(3+i, fmt.Sprintf("decoder%d", i), 1)
		report(mgr.AdmitSoft(d, ms(15), 100*sim.Millisecond), "soft: decoder (15ms/100ms mean)")
		gen := workload.DefaultMPEG(int64(cpu.DefaultRate), rng.Fork())
		machine.Add(d, workload.NewDecoder(gen.Trace(100000), true), 0)
	}

	// Best effort is never refused.
	for i := 0; i < 3; i++ {
		b := sched.NewThread(10+i, "shell", 1)
		report(mgr.AdmitBestEffort(b, "alice"), "best-effort: shell")
		machine.Add(b, workload.CPUBound(1_000_000), 0)
	}

	// A video conference starts: 25 MIPS of new soft demand does not fit
	// in the current soft budget, so the manager grows the class, keeping
	// best effort at no less than 25% of the machine.
	conf := sched.NewThread(20, "conference", 2)
	err = mgr.TryAdmitSoftGrowing(conf, ms(25), 100*sim.Millisecond, 0.25)
	report(err, "soft: conference (25ms/100ms mean), growing the class")
	if err == nil {
		gen := workload.DefaultMPEG(int64(cpu.DefaultRate), rng.Fork())
		machine.Add(conf, workload.NewDecoder(gen.Trace(100000), true), 0)
	}

	for _, c := range []qosmgr.Class{qosmgr.HardRealTime, qosmgr.SoftRealTime, qosmgr.BestEffort} {
		bw, _ := structure.Bandwidth(mgr.ClassNode(c))
		fmt.Printf("  %-15s guaranteed %.1f%% of the CPU\n", c, 100*bw)
	}

	machine.Run(30 * sim.Second)
	machine.Flush()

	fmt.Println("\nafter 30 simulated seconds:")
	fmt.Printf("  sensor: %d rounds, %d missed deadlines (min slack %v)\n",
		len(sensorProg.Slack), sensorProg.MissedDeadlines(), sensorProg.MinSlack())
	fmt.Printf("  conference work: %d instructions (%.1f%% of CPU)\n",
		conf.Done, 100*float64(conf.Done)/float64(machine.Stats().Work))
	fmt.Print(structure.String())
}

func report(err error, what string) {
	if err != nil {
		fmt.Printf("DENIED  %-52s %v\n", what, err)
		return
	}
	fmt.Printf("ADMIT   %s\n", what)
}
