// Videoserver: the workload the paper's introduction motivates — several
// VBR MPEG decoders with different importance sharing a soft real-time
// class next to best-effort load (the Fig. 10 scenario, extended).
//
// Three decoders with weights 1, 2 and 4 decode the same clip; a pair of
// CPU hogs run in a best-effort class. The decoders' frame counts track
// their weights, and the best-effort class cannot disturb them.
//
//	go run ./examples/videoserver
package main

import (
	"fmt"
	"log"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/workload"
)

func main() {
	const horizon = 30 * sim.Second
	structure := core.NewStructure()
	videoID, err := structure.Mknod("video", core.RootID, 1, sched.NewSFQ(10*sim.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	beID, err := structure.Mknod("best-effort", core.RootID, 1, sched.NewSFQ(10*sim.Millisecond))
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	machine := cpu.NewMachine(eng, cpu.DefaultRate, structure)
	rng := sim.NewRand(2026)

	// Same clip for every decoder, so frame ratios mirror CPU ratios.
	clip := workload.DefaultMPEG(int64(cpu.DefaultRate), rng).Trace(200000)
	weights := []float64{1, 2, 4}
	decoders := make([]*workload.Decoder, len(weights))
	threads := make([]*sched.Thread, len(weights))
	for i, w := range weights {
		decoders[i] = workload.NewDecoder(clip, true)
		threads[i] = sched.NewThread(i+1, fmt.Sprintf("decoder-w%g", w), w)
		if err := structure.Attach(threads[i], videoID); err != nil {
			log.Fatal(err)
		}
		machine.Add(threads[i], decoders[i], 0)
	}
	for i := 0; i < 2; i++ {
		hog := sched.NewThread(10+i, "hog", 1)
		if err := structure.Attach(hog, beID); err != nil {
			log.Fatal(err)
		}
		machine.Add(hog, workload.CPUBound(1_000_000), 0)
	}

	machine.Run(horizon)

	tbl := metrics.NewTable("decoder", "weight", "frames", "frames/s", "vs w=1")
	base := float64(decoders[0].FramesDecoded(horizon))
	for i, w := range weights {
		n := decoders[i].FramesDecoded(horizon)
		tbl.AddRow(threads[i].Name, w, n, float64(n)/horizon.Seconds(), float64(n)/base)
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nvideo class got %.1f%% of the CPU; best-effort the rest\n",
		100*float64(threads[0].Done+threads[1].Done+threads[2].Done)/float64(machine.Stats().Work))
}
