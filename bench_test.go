package hsfq_test

import (
	"fmt"
	"testing"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/experiments"
	"hsfq/internal/fairqueue"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

// ---- Figure regeneration benchmarks: one per table/figure of the
// paper's evaluation. Each iteration re-runs the full experiment
// (simulation + shape checks), so ns/op measures the cost of reproducing
// that figure end to end.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Seed: 42, EventQueue: *benchQueue})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			b.Fatalf("%s failed shape checks:\n%s", id, res.Summary())
		}
	}
}

func BenchmarkFig1MPEGTrace(b *testing.B)     { benchExperiment(b, "fig1") }
func BenchmarkFig3Trace(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig5TimeSharing(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig7aOverhead(b *testing.B)     { benchExperiment(b, "fig7a") }
func BenchmarkFig7bDepth(b *testing.B)        { benchExperiment(b, "fig7b") }
func BenchmarkFig8aHierarchy(b *testing.B)    { benchExperiment(b, "fig8a") }
func BenchmarkFig8bIsolation(b *testing.B)    { benchExperiment(b, "fig8b") }
func BenchmarkFig9RealTime(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig10Video(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11Dynamic(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkAblationFairness(b *testing.B)  { benchExperiment(b, "ablation-fairness") }
func BenchmarkAblationDelay(b *testing.B)     { benchExperiment(b, "ablation-delay") }
func BenchmarkAblationLottery(b *testing.B)   { benchExperiment(b, "ablation-lottery") }
func BenchmarkAblationBounds(b *testing.B)    { benchExperiment(b, "ablation-bounds") }
func BenchmarkAblationInversion(b *testing.B) { benchExperiment(b, "ablation-inversion") }
func BenchmarkAblationEBF(b *testing.B)       { benchExperiment(b, "ablation-ebf") }

// ---- A4 ablation: scheduling cost of the hierarchy's hot path
// (hsfq_schedule + hsfq_update) as fan-out and depth grow. The paper
// argues the per-decision cost is O(log n) in the fan-out and linear in
// the depth, and negligible against multi-millisecond quanta.

// BenchmarkScheduleFanout measures one Pick+Charge through the root with
// n runnable leaf children.
func BenchmarkScheduleFanout(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		b.Run(fmt.Sprintf("children-%d", n), func(b *testing.B) {
			s := core.NewStructure()
			for i := 0; i < n; i++ {
				leaf := sched.NewSFQ(10 * sim.Millisecond)
				id, err := s.Mknod(fmt.Sprintf("c%d", i), core.RootID, float64(i%7+1), leaf)
				if err != nil {
					b.Fatal(err)
				}
				t := sched.NewThread(i+1, "t", 1)
				if err := s.Attach(t, id); err != nil {
					b.Fatal(err)
				}
				s.Enqueue(t, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := s.Pick(0)
				s.Charge(t, 1_000_000, 0, true)
			}
		})
	}
}

// BenchmarkScheduleDepth measures one Pick+Charge through a chain of
// intermediate nodes, the Fig. 7(b) dimension.
func BenchmarkScheduleDepth(b *testing.B) {
	for _, depth := range []int{0, 5, 10, 30} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			s := core.NewStructure()
			parent := core.RootID
			for d := 0; d < depth; d++ {
				id, err := s.Mknod(fmt.Sprintf("d%d", d), parent, 1, nil)
				if err != nil {
					b.Fatal(err)
				}
				parent = id
			}
			leafID, err := s.Mknod("leaf", parent, 1, sched.NewSFQ(10*sim.Millisecond))
			if err != nil {
				b.Fatal(err)
			}
			t := sched.NewThread(1, "t", 1)
			if err := s.Attach(t, leafID); err != nil {
				b.Fatal(err)
			}
			s.Enqueue(t, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := s.Pick(0)
				s.Charge(got, 1_000_000, 0, true)
			}
		})
	}
}

// ---- Leaf scheduler hot paths: Pick+Charge per algorithm with 16
// runnable threads, the comparison behind §3's computational-efficiency
// claim.

func BenchmarkLeafSchedulers(b *testing.B) {
	algos := map[string]func() sched.Scheduler{
		"sfq":      func() sched.Scheduler { return sched.NewSFQ(10 * sim.Millisecond) },
		"rr":       func() sched.Scheduler { return sched.NewRoundRobin(10 * sim.Millisecond) },
		"edf":      func() sched.Scheduler { return sched.NewEDF(10 * sim.Millisecond) },
		"rm":       func() sched.Scheduler { return sched.NewRM(10 * sim.Millisecond) },
		"svr4":     func() sched.Scheduler { return sched.NewSVR4(nil, 100_000_000, 25*sim.Millisecond) },
		"lottery":  func() sched.Scheduler { return sched.NewLottery(10*sim.Millisecond, sim.NewRand(1)) },
		"stride":   func() sched.Scheduler { return sched.NewStride(10 * sim.Millisecond) },
		"eevdf":    func() sched.Scheduler { return sched.NewEEVDF(10*sim.Millisecond, 1_000_000) },
		"priority": func() sched.Scheduler { return sched.NewPriority(10 * sim.Millisecond) },
		"reserves": func() sched.Scheduler { return sched.NewReserves(10 * sim.Millisecond) },
	}
	for name, mk := range algos {
		b.Run(name, func(b *testing.B) {
			s := mk()
			for i := 0; i < 16; i++ {
				t := sched.NewThread(i+1, "t", float64(i%5+1))
				t.Period = sim.Time(i+1) * 10 * sim.Millisecond
				s.Enqueue(t, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			now := sim.Time(0)
			for i := 0; i < b.N; i++ {
				t := s.Pick(now)
				s.Charge(t, 1_000_000, now, true)
				now += sim.Millisecond
			}
		})
	}
}

// BenchmarkMachineSimulation measures simulated-seconds-per-real-second
// of the full machine: the Fig. 6 structure with six threads.
func BenchmarkMachineSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.NewStructure()
		id1, _ := s.Mknod("a", core.RootID, 2, sched.NewSFQ(10*sim.Millisecond))
		id2, _ := s.Mknod("b", core.RootID, 6, sched.NewSFQ(10*sim.Millisecond))
		m := cpu.NewMachine(sim.NewEngine(), cpu.DefaultRate, s)
		for j := 0; j < 3; j++ {
			t1 := sched.NewThread(j+1, "t", 1)
			if err := s.Attach(t1, id1); err != nil {
				b.Fatal(err)
			}
			m.Add(t1, cpu.Forever(cpu.Compute(100_000_000)), 0)
			t2 := sched.NewThread(j+10, "u", 1)
			if err := s.Attach(t2, id2); err != nil {
				b.Fatal(err)
			}
			m.Add(t2, cpu.Forever(cpu.Compute(100_000_000)), 0)
		}
		m.Run(10 * sim.Second)
	}
}

// BenchmarkPacketAlgorithms measures packet-level Arrive+Dequeue+Complete
// across the fair queuing family.
func BenchmarkPacketAlgorithms(b *testing.B) {
	weights := []float64{1, 2, 3, 4}
	algos := map[string]func() fairqueue.Algorithm{
		"sfq":  func() fairqueue.Algorithm { return fairqueue.NewSFQ(weights) },
		"scfq": func() fairqueue.Algorithm { return fairqueue.NewSCFQ(weights) },
		"wfq":  func() fairqueue.Algorithm { return fairqueue.NewWFQ(1e6, weights) },
		"fqs":  func() fairqueue.Algorithm { return fairqueue.NewFQS(1e6, weights) },
	}
	for name, mk := range algos {
		b.Run(name, func(b *testing.B) {
			alg := mk()
			b.ReportAllocs()
			b.ResetTimer()
			now := sim.Time(0)
			for i := 0; i < b.N; i++ {
				p := &fairqueue.Packet{Flow: i % 4, Size: 1000, Arrive: now}
				alg.Arrive(p, now)
				q := alg.Dequeue(now)
				now += sim.Millisecond
				alg.Complete(q, now)
			}
		})
	}
}

func BenchmarkAblationProtection(b *testing.B) { benchExperiment(b, "ablation-protection") }

func BenchmarkAblationRecursive(b *testing.B) { benchExperiment(b, "ablation-recursive") }

func BenchmarkAblationLeaf(b *testing.B) { benchExperiment(b, "ablation-leaf") }
