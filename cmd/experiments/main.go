// Command experiments regenerates the paper's evaluation figures on the
// simulated machine and self-checks their shapes.
//
// Usage:
//
//	experiments -run fig5          # one experiment
//	experiments -all               # everything, summary at the end
//	experiments -list              # available experiment ids
//	experiments -run fig8a -plot   # with ASCII plots
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hsfq/internal/experiments"
)

func main() {
	var (
		runID = flag.String("run", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Uint64("seed", 42, "random seed")
		plot  = flag.Bool("plot", false, "include ASCII plots")
		out   = flag.String("out", "", "also write each experiment's output to this directory")
	)
	flag.Parse()

	switch {
	case *list:
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-18s %s\n", id, title)
		}
	case *all:
		failed := 0
		for _, id := range experiments.IDs() {
			if !runOne(id, experiments.Options{Seed: *seed, Plot: *plot}, *out) {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%d experiment(s) failed their shape checks\n", failed)
			os.Exit(1)
		}
		fmt.Println("all experiments reproduce the paper's shapes")
	case *runID != "":
		if !runOne(*runID, experiments.Options{Seed: *seed, Plot: *plot}, *out) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, opt experiments.Options, outDir string) bool {
	res, err := experiments.Run(id, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return false
	}
	fmt.Printf("==== %s: %s ====\n", res.ID, res.Title)
	fmt.Print(res.Output())
	fmt.Print(res.Summary())
	fmt.Println()
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		body := "==== " + res.ID + ": " + res.Title + " ====\n" + res.Output() + res.Summary()
		if err := os.WriteFile(filepath.Join(outDir, id+".txt"), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
	}
	return res.Passed()
}
