// Command experiments regenerates the paper's evaluation figures on the
// simulated machine and self-checks their shapes.
//
// Usage:
//
//	experiments -run fig5            # one experiment
//	experiments -all                 # everything, summary at the end
//	experiments -all -workers 8      # same, run concurrently; output is
//	                                 # byte-identical to the serial run
//	experiments -all -json           # one JSON object per experiment
//	experiments -list                # available experiment ids
//	experiments -run fig8a -plot     # with ASCII plots
//
// Each experiment is an independent deterministic simulation, so -workers
// parallelizes across private machines without changing any result; the
// figures are rendered in id order regardless of completion order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hsfq/internal/experiments"
	"hsfq/internal/sim"
)

func main() {
	var (
		runID    = flag.String("run", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		seed     = flag.Uint64("seed", 42, "random seed")
		plot     = flag.Bool("plot", false, "include ASCII plots")
		out      = flag.String("out", "", "also write each experiment's output to this directory")
		workers  = flag.Int("workers", 1, "run experiments concurrently on this many workers")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per experiment (id, title, checks, digest) instead of ASCII")
		benchOut = flag.String("benchout", "", "append a Go-benchmark-format wall-clock line for the whole run to this file")
		queue    = flag.String("queue", "", "event-queue implementation: "+strings.Join(sim.EventQueueNames(), " or ")+" (results are identical; the queue only changes speed)")
	)
	flag.Parse()
	if !sim.KnownEventQueue(*queue) {
		fmt.Fprintf(os.Stderr, "experiments: unknown event queue %q (have %v)\n", *queue, sim.EventQueueNames())
		os.Exit(2)
	}

	opt := experiments.Options{Seed: *seed, Plot: *plot, EventQueue: *queue}
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-18s %s\n", id, title)
		}
	case *all:
		ids := experiments.IDs()
		start := time.Now()
		results := runPool(ids, opt, *workers)
		elapsed := time.Since(start)
		failed := 0
		for _, res := range results {
			if !emit(res, *jsonOut, *out) {
				failed++
			}
		}
		if *benchOut != "" {
			if err := appendBenchLine(*benchOut, "BenchmarkExperimentsAll", elapsed); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%d experiment(s) failed their shape checks\n", failed)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Println("all experiments reproduce the paper's shapes")
		}
	case *runID != "":
		res, err := experiments.Run(*runID, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !emit(res, *jsonOut, *out) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runPool executes the experiments across a bounded worker pool and
// returns the results in id order. Every experiment builds its own
// simulated machine, so runs cannot interact.
func runPool(ids []string, opt experiments.Options, workers int) []*experiments.Result {
	if workers <= 1 {
		workers = 1
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	results := make([]*experiments.Result, len(ids))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				res, err := experiments.Run(ids[i], opt)
				if err != nil { // ids come from IDs(): cannot be unknown
					panic(err)
				}
				results[i] = res
			}
		}()
	}
	for i := range ids {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return results
}

// jsonResult is the machine-readable form of one experiment, consumed by
// sweeps and CI instead of scraping the ASCII tables.
type jsonResult struct {
	ID     string              `json:"id"`
	Title  string              `json:"title"`
	Passed bool                `json:"passed"`
	Digest string              `json:"digest"`
	Checks []experiments.Check `json:"checks"`
}

func emit(res *experiments.Result, asJSON bool, outDir string) bool {
	if asJSON {
		b, err := json.Marshal(jsonResult{
			ID: res.ID, Title: res.Title, Passed: res.Passed(),
			Digest: res.Digest(), Checks: res.Checks,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("==== %s: %s ====\n", res.ID, res.Title)
		fmt.Print(res.Output())
		fmt.Print(res.Summary())
		fmt.Println()
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		body := "==== " + res.ID + ": " + res.Title + " ====\n" + res.Output() + res.Summary()
		if err := os.WriteFile(filepath.Join(outDir, res.ID+".txt"), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
	}
	return res.Passed()
}

// appendBenchLine records the suite's wall clock in the standard benchmark
// line format (the name is kept constant so a serial file and a parallel
// file can be compared by benchjson or benchstat); repeated runs append
// and aggregate as the median.
func appendBenchLine(path, name string, elapsed time.Duration) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(f, "%s 1 %d ns/op\n", name, elapsed.Nanoseconds())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
