// Command ckptsmoke is the end-to-end harness for the checkpoint/restore
// subsystem. It proves the resume-equivalence contract against real
// processes and real files, the way an operator would hit it:
//
//  1. Kill/resume: an hsfqsim run checkpointing periodically is SIGKILLed
//     mid-simulation; a -resume run from the surviving snapshot must
//     produce a trace CSV byte-identical to an uninterrupted run.
//  2. Horizon extension: an hsfqsweep with a horizon axis and a
//     -checkpoint-dir store must emit JSONL byte-identical to a storeless
//     run while actually resuming jobs from shorter-horizon prefixes.
//  3. Divergence bisection: hsfqdiff must exit 0 on identical configs,
//     and on a config with a deliberately planted divergence (a thread
//     that first wakes at t=1s) it must exit 3 and pinpoint the first
//     divergent event at the 1s mark.
//
// Usage:
//
//	ckptsmoke -hsfqsim /tmp/hsfqsim -hsfqsweep /tmp/hsfqsweep \
//	          -hsfqdiff /tmp/hsfqdiff -spec examples/sweeps/ckpt.json
//
// Exit status 0 when all three legs hold, 1 otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"time"

	"hsfq/internal/testutil"
)

func main() {
	var (
		simBin   = flag.String("hsfqsim", "", "path to an hsfqsim binary (required)")
		sweepBin = flag.String("hsfqsweep", "", "path to an hsfqsweep binary (required)")
		diffBin  = flag.String("hsfqdiff", "", "path to an hsfqdiff binary (required)")
		specPath = flag.String("spec", "examples/sweeps/ckpt.json", "horizon-axis sweep spec for the extension leg")
	)
	flag.Parse()
	if *simBin == "" || *sweepBin == "" || *diffBin == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*simBin, *sweepBin, *diffBin, *specPath); err != nil {
		fmt.Fprintln(os.Stderr, "ckptsmoke:", err)
		os.Exit(1)
	}
}

func run(simBin, sweepBin, diffBin, specPath string) error {
	dir, err := os.MkdirTemp("", "ckptsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	if err := killResumeLeg(simBin, dir); err != nil {
		return fmt.Errorf("kill/resume leg: %w", err)
	}
	if err := extensionLeg(sweepBin, specPath, dir); err != nil {
		return fmt.Errorf("horizon-extension leg: %w", err)
	}
	if err := bisectLeg(diffBin, dir); err != nil {
		return fmt.Errorf("bisection leg: %w", err)
	}
	return nil
}

// simConfig is shaped for the kill/resume leg: a long horizon so the run
// is killable mid-flight on any machine, with enough event variety
// (periodic deadlines, SVR4 feedback, Poisson interrupts, a seeded RNG
// stream) that a sloppy restore would almost surely show in the trace.
const simConfig = `{
  "rate_mips": 100,
  "horizon": "120s",
  "seed": 11,
  "nodes": [
    {"path": "/rt", "weight": 2, "leaf": "edf", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "svr4"}
  ],
  "threads": [
    {"name": "cam", "leaf": "/rt", "program": {"kind": "periodic", "period": "30ms", "cost": "5ms"}},
    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}},
    {"name": "chat", "leaf": "/be", "program": {"kind": "interactive", "think_mean": "50ms"}}
  ],
  "interrupts": [{"kind": "poisson", "rate_per_sec": 40, "service": "150us"}]
}`

// killResumeLeg runs the simulation three ways: uninterrupted (the
// reference), checkpointing until SIGKILLed mid-run, and resumed from the
// snapshot the kill left behind. The resumed trace must be byte-identical
// to the reference.
func killResumeLeg(simBin, dir string) error {
	cfgPath := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(cfgPath, []byte(simConfig), 0o644); err != nil {
		return err
	}

	pristine := filepath.Join(dir, "pristine.csv")
	out, err := exec.Command(simBin, "-config", cfgPath, "-trace", pristine).CombinedOutput()
	if err != nil {
		return fmt.Errorf("reference run: %w\n%s", err, out)
	}

	ckpt := filepath.Join(dir, "run.ckpt")
	victim := exec.Command(simBin, "-config", cfgPath,
		"-trace", filepath.Join(dir, "never-written.csv"),
		"-checkpoint-every", "2s", "-checkpoint-out", ckpt)
	var victimOut bytes.Buffer
	victim.Stdout = &victimOut
	victim.Stderr = &victimOut
	if err := victim.Start(); err != nil {
		return err
	}
	// Kill as soon as the first snapshot lands. The write is atomic, so
	// whenever the SIGKILL arrives — even mid-write of a later snapshot —
	// the file holds a complete earlier one.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			victim.Process.Kill()
			victim.Wait()
			return fmt.Errorf("no checkpoint file after 30s\n%s", victimOut.Bytes())
		}
		time.Sleep(200 * time.Microsecond)
	}
	if err := victim.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	err = victim.Wait()
	ws, ok := victim.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		return fmt.Errorf("victim was not killed mid-run (err %v, state %v); the kill landed after completion — raise the config horizon", err, victim.ProcessState)
	}
	fmt.Printf("ckptsmoke: SIGKILLed checkpointing run mid-simulation; snapshot survives at %s\n", ckpt)

	resumed := filepath.Join(dir, "resumed.csv")
	resume := exec.Command(simBin, "-resume", ckpt, "-trace", resumed)
	var resumeErr bytes.Buffer
	resume.Stdout = os.Stdout
	resume.Stderr = &resumeErr
	if err := resume.Run(); err != nil {
		return fmt.Errorf("resume run: %w\n%s", err, resumeErr.Bytes())
	}
	if !bytes.Contains(resumeErr.Bytes(), []byte("resumed at")) {
		return fmt.Errorf("resume run did not report its resume point: %s", resumeErr.Bytes())
	}

	want, err := os.ReadFile(pristine)
	if err != nil {
		return err
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		return err
	}
	if d := testutil.DiffBytes(got, want); d != "" {
		return fmt.Errorf("resumed trace differs from uninterrupted run: %s", d)
	}
	fmt.Printf("ckptsmoke: kill/resume ok: resumed trace byte-identical to uninterrupted run (%d bytes)\n", len(got))
	return nil
}

var resumedRE = regexp.MustCompile(`resumed (\d+) of (\d+) job\(s\)`)

// extensionLeg compares a storeless sweep against one with a checkpoint
// store: identical JSONL, and the store must actually be used — first
// pass resuming longer horizons from shorter ones, second pass resuming
// every job from the now-complete store.
func extensionLeg(sweepBin, specPath, dir string) error {
	refPath := filepath.Join(dir, "ref.jsonl")
	out, err := exec.Command(sweepBin, "-spec", specPath, "-o", refPath, "-summary=false").CombinedOutput()
	if err != nil {
		return fmt.Errorf("storeless sweep: %w\n%s", err, out)
	}
	ref, err := os.ReadFile(refPath)
	if err != nil {
		return err
	}

	store := filepath.Join(dir, "store")
	runStored := func(outName string) (jsonl []byte, resumed, jobs int, err error) {
		p := filepath.Join(dir, outName)
		// -workers 1 on the first pass so shorter-horizon jobs finish
		// (and store their final states) before longer ones start.
		cmd := exec.Command(sweepBin, "-spec", specPath, "-o", p, "-summary=false",
			"-workers", "1", "-checkpoint-dir", store)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, 0, 0, fmt.Errorf("stored sweep: %w\n%s", err, stderr.Bytes())
		}
		m := resumedRE.FindSubmatch(stderr.Bytes())
		if m == nil {
			return nil, 0, 0, fmt.Errorf("no resume report on stderr: %s", stderr.Bytes())
		}
		resumed, _ = strconv.Atoi(string(m[1]))
		jobs, _ = strconv.Atoi(string(m[2]))
		jsonl, err = os.ReadFile(p)
		return jsonl, resumed, jobs, err
	}

	got, resumed, jobs, err := runStored("stored.jsonl")
	if err != nil {
		return err
	}
	if resumed == 0 {
		return fmt.Errorf("first stored pass resumed nothing; horizon extension not exercised")
	}
	if d := testutil.DiffBytes(got, ref); d != "" {
		return fmt.Errorf("stored sweep JSONL differs from storeless: %s", d)
	}

	again, resumed2, jobs2, err := runStored("again.jsonl")
	if err != nil {
		return err
	}
	if resumed2 != jobs2 {
		return fmt.Errorf("fully-primed pass resumed %d of %d jobs", resumed2, jobs2)
	}
	if d := testutil.DiffBytes(again, ref); d != "" {
		return fmt.Errorf("fully-primed sweep JSONL differs from storeless: %s", d)
	}
	fmt.Printf("ckptsmoke: horizon extension ok: %d then %d of %d job(s) resumed, JSONL byte-identical to storeless run\n",
		resumed, resumed2, jobs)
	return nil
}

// diffConfig is the bisection leg's base scenario.
const diffConfig = `{
  "horizon": "2s",
  "seed": 5,
  "nodes": [
    {"path": "/rt", "weight": 3, "leaf": "edf", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "sfq", "quantum": "10ms"}
  ],
  "threads": [
    {"name": "cam", "leaf": "/rt", "program": {"kind": "periodic", "period": "33ms", "cost": "5ms"}},
    {"name": "job", "leaf": "/be", "program": {"kind": "loop"}}%s
  ],
  "interrupts": [{"kind": "poisson", "rate_per_sec": 120, "service": "100us"}]
}`

// intruder is appended to diffConfig's thread list for the divergent
// side: last in the list so existing thread IDs are untouched, dormant
// until t=1s so the streams really are identical for the first second.
const intruder = `,
    {"name": "intruder", "leaf": "/be", "start": "1s", "program": {"kind": "loop"}}`

var divergenceRE = regexp.MustCompile(`(?m)^divergence_at_ns=(\d+)$`)

// bisectLeg checks both hsfqdiff verdicts: identical configs exit 0, and
// a planted 1s divergence is pinpointed with exit 3.
func bisectLeg(diffBin, dir string) error {
	base := filepath.Join(dir, "base.json")
	if err := os.WriteFile(base, []byte(fmt.Sprintf(diffConfig, "")), 0o644); err != nil {
		return err
	}
	planted := filepath.Join(dir, "planted.json")
	if err := os.WriteFile(planted, []byte(fmt.Sprintf(diffConfig, intruder)), 0o644); err != nil {
		return err
	}

	out, err := exec.Command(diffBin, "-a", base, "-b", base).CombinedOutput()
	if err != nil || !bytes.Contains(out, []byte("identical:")) {
		return fmt.Errorf("identical configs: err %v\n%s", err, out)
	}

	cmd := exec.Command(diffBin, "-a", base, "-b", planted)
	out, err = cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		return fmt.Errorf("planted divergence: err %v, want exit status 3\n%s", err, out)
	}
	m := divergenceRE.FindSubmatch(out)
	if m == nil {
		return fmt.Errorf("no divergence_at_ns line:\n%s", out)
	}
	at, _ := strconv.ParseInt(string(m[1]), 10, 64)
	if at < 900e6 || at > 1100e6 {
		return fmt.Errorf("divergence reported at %dns, want ~1s (the intruder's wake)\n%s", at, out)
	}
	fmt.Printf("ckptsmoke: bisection ok: identical exits 0, planted divergence pinpointed at %dns (exit 3)\n", at)
	return nil
}
