// Command smpsmoke is the end-to-end harness for the multicore machine
// abstraction. It proves the refactor's two headline contracts against
// real processes and real files:
//
//  1. Compatibility: a single-core run is byte-identical to a run of the
//     same config before the machine knew about cores — hsfqsim with
//     -cores 1 must emit the same trace CSV and the same report as a run
//     with no cores setting at all, and every cores:1 grid point of an
//     hsfqsweep must produce one digest per seed no matter which policy
//     or migration cost rides along. A leaf that cannot support the
//     global dequeue protocol (svr4) must be rejected up front, not
//     mid-simulation.
//  2. Multicore behavior: a cores × policy × migration-cost sweep run
//     under -verify must be deterministic; work stealing must actually
//     migrate threads off their packed home core; migration cost must
//     visibly reduce total throughput; and global/steal machines must
//     scale throughput beyond one core.
//
// Usage:
//
//	smpsmoke -hsfqsim /tmp/hsfqsim -hsfqsweep /tmp/hsfqsweep \
//	         -spec examples/sweeps/smp.json
//
// Exit status 0 when both legs hold, 1 otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hsfq/internal/testutil"
)

func main() {
	var (
		simBin   = flag.String("hsfqsim", "", "path to an hsfqsim binary (required)")
		sweepBin = flag.String("hsfqsweep", "", "path to an hsfqsweep binary (required)")
		specPath = flag.String("spec", "examples/sweeps/smp.json", "cores x policy x migration-cost sweep spec for the grid leg")
	)
	flag.Parse()
	if *simBin == "" || *sweepBin == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*simBin, *sweepBin, *specPath); err != nil {
		fmt.Fprintln(os.Stderr, "smpsmoke:", err)
		os.Exit(1)
	}
}

func run(simBin, sweepBin, specPath string) error {
	dir, err := os.MkdirTemp("", "smpsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	if err := serialIdentityLeg(simBin, dir); err != nil {
		return fmt.Errorf("serial-identity leg: %w", err)
	}
	if err := gridLeg(sweepBin, specPath, dir); err != nil {
		return fmt.Errorf("grid leg: %w", err)
	}
	return nil
}

// simConfig is shaped for the serial-identity leg: no cores setting, and
// deliberately built on leaves from both capability classes — edf is
// dequeue-safe, svr4 is partitioned-only — so the leg also proves that
// legacy leaves still run untouched on one core and that the capability
// gate fires before a multicore global/steal machine is ever built.
const simConfig = `{
  "rate_mips": 100,
  "horizon": "2s",
  "seed": 7,
  "nodes": [
    {"path": "/rt", "weight": 2, "leaf": "edf", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "svr4"}
  ],
  "threads": [
    {"name": "cam", "leaf": "/rt", "program": {"kind": "periodic", "period": "30ms", "cost": "5ms"}},
    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}},
    {"name": "chat", "leaf": "/be", "program": {"kind": "interactive", "think_mean": "50ms"}}
  ],
  "interrupts": [{"kind": "poisson", "rate_per_sec": 40, "service": "150us"}]
}`

// stripWroteLines drops hsfqsim's "wrote <path> ..." lines, which differ
// between runs only because the output filenames do.
func stripWroteLines(b []byte) []byte {
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "wrote ") {
			continue
		}
		out.Write(sc.Bytes())
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// serialIdentityLeg runs one config four ways through hsfqsim: with no
// cores setting (the pre-SMP behavior), with -cores 1 (must be
// byte-identical), with -cores 2 (must grow a core column and per-core
// report lines), and with -cores 2 -policy steal (must be rejected,
// because the config uses an svr4 leaf).
func serialIdentityLeg(simBin, dir string) error {
	cfgPath := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(cfgPath, []byte(simConfig), 0o644); err != nil {
		return err
	}

	runSim := func(trace string, extra ...string) ([]byte, []byte, error) {
		args := append([]string{"-config", cfgPath, "-trace", trace}, extra...)
		cmd := exec.Command(simBin, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, nil, fmt.Errorf("hsfqsim %v: %w\n%s", args, err, stderr.Bytes())
		}
		csv, err := os.ReadFile(trace)
		return stdout.Bytes(), csv, err
	}

	refOut, refCSV, err := runSim(filepath.Join(dir, "ref.csv"))
	if err != nil {
		return err
	}
	oneOut, oneCSV, err := runSim(filepath.Join(dir, "one.csv"), "-cores", "1")
	if err != nil {
		return err
	}
	if d := testutil.DiffBytes(oneCSV, refCSV); d != "" {
		return fmt.Errorf("-cores 1 trace differs from coreless run: %s", d)
	}
	if d := testutil.DiffBytes(stripWroteLines(oneOut), stripWroteLines(refOut)); d != "" {
		return fmt.Errorf("-cores 1 report differs from coreless run: %s", d)
	}
	fmt.Printf("smpsmoke: serial identity ok: -cores 1 trace byte-identical to coreless run (%d bytes)\n", len(refCSV))

	smpOut, smpCSV, err := runSim(filepath.Join(dir, "smp.csv"), "-cores", "2")
	if err != nil {
		return err
	}
	header, _, _ := bytes.Cut(smpCSV, []byte("\n"))
	if !bytes.HasSuffix(header, []byte(",core")) {
		return fmt.Errorf("-cores 2 trace header %q lacks the core column", header)
	}
	if refHeader, _, _ := bytes.Cut(refCSV, []byte("\n")); bytes.HasSuffix(refHeader, []byte(",core")) {
		return fmt.Errorf("coreless trace header %q has a core column", refHeader)
	}
	if !bytes.Contains(smpOut, []byte("policy partitioned")) || !bytes.Contains(smpOut, []byte("core 1:")) {
		return fmt.Errorf("-cores 2 report lacks policy/per-core lines:\n%s", smpOut)
	}
	fmt.Printf("smpsmoke: multicore trace ok: -cores 2 adds the core column and per-core report lines\n")

	cmd := exec.Command(simBin, "-config", cfgPath, "-cores", "2", "-policy", "steal",
		"-trace", filepath.Join(dir, "never-written.csv"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		return fmt.Errorf("svr4 leaf under -policy steal was accepted:\n%s", out)
	}
	if !bytes.Contains(out, []byte("does not support")) {
		return fmt.Errorf("svr4-under-steal rejection has the wrong message: %v\n%s", err, out)
	}
	fmt.Printf("smpsmoke: capability gate ok: svr4 leaf under -policy steal rejected up front\n")
	return nil
}

// jobResult mirrors the JSONL rows hsfqsweep streams.
type jobResult struct {
	ID      int                `json:"id"`
	Point   map[string]string  `json:"point"`
	Rep     int                `json:"rep"`
	Seed    uint64             `json:"seed"`
	Digest  string             `json:"digest"`
	Metrics map[string]float64 `json:"metrics"`
	Error   string             `json:"error"`
}

func (r jobResult) cores() int {
	n, _ := strconv.Atoi(r.Point["cores"])
	return n
}

func (r jobResult) migrationCost() time.Duration {
	d, _ := time.ParseDuration(r.Point["migration_cost"])
	return d
}

// gridLeg runs the cores x policy x migration-cost sweep under -verify
// and checks the grid's cross-point invariants on the streamed JSONL.
func gridLeg(sweepBin, specPath, dir string) error {
	outPath := filepath.Join(dir, "grid.jsonl")
	out, err := exec.Command(sweepBin, "-spec", specPath, "-workers", "4", "-verify",
		"-o", outPath, "-summary=false").CombinedOutput()
	if err != nil {
		return fmt.Errorf("verified sweep: %w\n%s", err, out)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	var rows []jobResult
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var r jobResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return fmt.Errorf("JSONL line %q: %w", sc.Text(), err)
		}
		if r.Error != "" {
			return fmt.Errorf("job %d (%v) failed: %s", r.ID, r.Point, r.Error)
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return fmt.Errorf("sweep streamed no results")
	}
	fmt.Printf("smpsmoke: grid ok: %d jobs, every job run twice with matching digests\n", len(rows))

	// Compatibility: at one core, policy and migration cost must be
	// invisible — one digest per seed across the whole cores:1 plane.
	coreOneDigest := map[uint64]string{}
	for _, r := range rows {
		if r.cores() != 1 {
			continue
		}
		if prev, ok := coreOneDigest[r.Seed]; !ok {
			coreOneDigest[r.Seed] = r.Digest
		} else if prev != r.Digest {
			return fmt.Errorf("cores:1 digest varies with %v at seed %d", r.Point, r.Seed)
		}
	}
	if len(coreOneDigest) == 0 {
		return fmt.Errorf("spec has no cores:1 plane")
	}
	fmt.Printf("smpsmoke: cores:1 plane ok: one digest per seed across every policy and migration cost\n")

	// Behavior: the spec packs every thread's home onto core 0, so steal
	// machines must migrate; charging a migration cost must then cost
	// real throughput; and shared-queue policies must scale past one core.
	type pointKey struct {
		policy string
		cores  int
		seed   uint64
	}
	work := map[pointKey]map[time.Duration]float64{}
	migrated := 0
	for _, r := range rows {
		k := pointKey{r.Point["policy"], r.cores(), r.Seed}
		if work[k] == nil {
			work[k] = map[time.Duration]float64{}
		}
		work[k][r.migrationCost()] = r.Metrics["work_total"]
		if k.policy == "steal" && k.cores > 1 {
			if r.Metrics["migrations"] <= 0 {
				return fmt.Errorf("steal at %v seed %d: no migrations off the packed core", r.Point, r.Seed)
			}
			migrated++
		}
	}
	for k, byCost := range work {
		if k.policy != "steal" || k.cores == 1 {
			continue
		}
		free, costly := byCost[0], byCost[500*time.Microsecond]
		if costly >= free {
			return fmt.Errorf("steal cores:%d seed %d: work %v with 500µs migration cost, %v without",
				k.cores, k.seed, costly, free)
		}
	}
	for k, byCost := range work {
		if k.cores == 1 || k.policy == "partitioned" {
			continue
		}
		base := work[pointKey{"partitioned", 1, k.seed}][0]
		if byCost[0] <= 1.3*base {
			return fmt.Errorf("%s cores:%d seed %d: work %v did not scale past one core (%v)",
				k.policy, k.cores, k.seed, byCost[0], base)
		}
	}
	fmt.Printf("smpsmoke: multicore behavior ok: %d steal points migrated, migration cost reduces work, global/steal scale past one core\n", migrated)
	return nil
}
