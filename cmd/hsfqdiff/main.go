// Command hsfqdiff localizes the first divergent scheduling event between
// two simulation runs. Give it two configs (or one config under two
// seeds): if their event streams are identical it says so and exits 0;
// otherwise it reports the simulated time of the first event where the
// runs part ways and exits 3.
//
// Usage:
//
//	hsfqdiff -a before.json -b after.json
//	hsfqdiff -a sim.json -b sim.json -seed-a 1 -seed-b 2
//	hsfqdiff -a before.json -b after.json -grid 64
//
// Replaying two full traces to find one differing row is wasteful, so
// hsfqdiff bisects with checkpoints: each run executes once while a
// streaming hasher folds every event into a SHA-256 and an in-memory
// checkpoint of the full simulator state is captured at -grid evenly
// spaced instants, each paired with the digest of the stream so far.
// The last instant where both prefixes agree bounds the divergence; only
// that final grid cell is replayed — restored from each run's own
// checkpoint — with full event recording to pinpoint the first
// mismatching row. Event storage is O(horizon/grid), not O(horizon).
//
// Exit status: 0 identical, 3 divergent, 1 error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hsfq/internal/checkpoint"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

// exitDivergent mirrors hsfqsweep's mismatch code: the runs completed
// fine but their streams differ.
const exitDivergent = 3

func main() {
	var (
		aPath = flag.String("a", "", "first simulation config (required)")
		bPath = flag.String("b", "", "second simulation config (required)")
		seedA = flag.Uint64("seed-a", 0, "seed override for -a")
		seedB = flag.Uint64("seed-b", 0, "seed override for -b")
		grid  = flag.Int("grid", 16, "checkpoint instants per run; finer grids replay less")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	divergent, err := diff(os.Stdout, *aPath, *bPath, *seedA, *seedB, *grid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsfqdiff:", err)
		os.Exit(1)
	}
	if divergent {
		os.Exit(exitDivergent)
	}
}

// side is one probed run: its buildable inputs plus the artifacts of the
// probe pass — grid checkpoints with prefix digests, and the digest of
// the complete stream.
type side struct {
	label   string
	cfg     simconfig.Config
	seed    uint64
	horizon sim.Time

	ckpt    [][]byte // ckpt[i] = state at horizon*i/grid; [0] unused (rebuild)
	digest  []string // digest[i] = stream digest at that instant
	rows    []int    // rows[i] = events hashed by that instant
	final   string
	finalRN int
}

// diff probes both runs and, if they differ, bisects and reports the
// first divergent event. It returns whether the runs diverged.
func diff(w io.Writer, aPath, bPath string, seedA, seedB uint64, grid int) (bool, error) {
	if grid < 1 {
		return false, fmt.Errorf("-grid must be at least 1")
	}
	a, err := probe("a", aPath, seedA, grid)
	if err != nil {
		return false, err
	}
	b, err := probe("b", bPath, seedB, grid)
	if err != nil {
		return false, err
	}
	if a.horizon != b.horizon {
		return false, fmt.Errorf("horizons differ (%v vs %v); divergence search needs a common horizon", a.horizon, b.horizon)
	}

	if a.final == b.final && a.finalRN == b.finalRN {
		fmt.Fprintf(w, "identical: %d event(s), digest %s\n", a.finalRN, a.final)
		return false, nil
	}

	// Bisect: the last grid instant where both prefixes agree. Index 0
	// (the empty prefix) always agrees.
	from := 0
	for i := grid - 1; i > 0; i-- {
		if a.ckpt[i] != nil && b.ckpt[i] != nil && a.digest[i] == b.digest[i] && a.rows[i] == b.rows[i] {
			from = i
			break
		}
	}

	evA, err := a.replay(from, grid)
	if err != nil {
		return false, err
	}
	evB, err := b.replay(from, grid)
	if err != nil {
		return false, err
	}
	at, rowA, rowB, found := firstDivergence(evA, evB)
	if !found {
		return false, fmt.Errorf("streams differ in digest but replays from instant %d/%d agree; checkpoint state is inconsistent", from, grid)
	}
	fmt.Fprintf(w, "divergence_at_ns=%d\n", int64(at))
	fmt.Fprintf(w, "a: %s\nb: %s\n", rowA, rowB)
	fmt.Fprintf(w, "replayed from instant %d/%d (t=%v), %d vs %d event(s) in the window\n",
		from, grid, a.horizon*sim.Time(from)/sim.Time(grid), len(evA), len(evB))
	return true, nil
}

// probe executes one run start to finish, folding every event into a
// streaming hash and snapshotting state + prefix digest at each grid
// instant. Checkpoints that fail to encode leave a nil slot: the
// bisection then falls back to an earlier instant.
func probe(label, path string, seed uint64, grid int) (*side, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cfg, err := simconfig.Parse(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s, err := simconfig.Build(cfg, simconfig.BuildOptions{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	sd := &side{
		label: label, cfg: cfg, seed: seed,
		horizon: s.Config.Horizon.Time(),
		ckpt:    make([][]byte, grid),
		digest:  make([]string, grid),
		rows:    make([]int, grid),
	}
	h := trace.NewHasher()
	s.Machine.Listen(h)
	for i := 1; i < grid; i++ {
		at := sd.horizon * sim.Time(i) / sim.Time(grid)
		if at <= 0 {
			continue
		}
		i := i
		s.Engine.At(at, func() {
			if data, err := checkpoint.Save(s, checkpoint.Options{}); err == nil {
				sd.ckpt[i] = data
			} else {
				fmt.Fprintf(os.Stderr, "hsfqdiff: %s: checkpoint at %v: %v\n", label, at, err)
			}
			sd.digest[i] = h.Sum()
			sd.rows[i] = h.Rows()
		})
	}
	s.Run()
	sd.final = h.Sum()
	sd.finalRN = h.Rows()
	return sd, nil
}

// replay re-executes the run from grid instant `from` to the horizon with
// full event recording. Instant 0 rebuilds from the config; later
// instants restore the probe's checkpoint, which resume equivalence
// guarantees continues byte-identically to the original run.
func (sd *side) replay(from, grid int) ([]trace.Event, error) {
	var s *simconfig.Simulation
	var err error
	if from == 0 {
		s, err = simconfig.Build(sd.cfg, simconfig.BuildOptions{Seed: sd.seed})
	} else {
		s, err = checkpoint.Restore(sd.ckpt[from], checkpoint.Options{})
	}
	if err != nil {
		return nil, fmt.Errorf("%s: replay from instant %d: %w", sd.label, from, err)
	}
	rec := trace.NewRecorder(0)
	s.Machine.Listen(rec)
	s.Run()
	return rec.Events(), nil
}

// firstDivergence scans two replayed windows for the first event where
// they disagree, comparing the same canonical row text the hasher folds.
func firstDivergence(a, b []trace.Event) (at sim.Time, rowA, rowB string, found bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ra, rb := rowText(a[i]), rowText(b[i])
		if ra != rb {
			at = a[i].At
			if b[i].At < at {
				at = b[i].At
			}
			return at, ra, rb, true
		}
	}
	switch {
	case len(a) > n:
		return a[n].At, rowText(a[n]), "<end of stream>", true
	case len(b) > n:
		return b[n].At, "<end of stream>", rowText(b[n]), true
	}
	return 0, "", "", false
}

// rowText renders an event exactly as trace.Hasher folds it, so replay
// comparison and digest comparison agree on what "equal" means.
func rowText(e trace.Event) string {
	return fmt.Sprintf("%d,%s,%s,%d,%d,%t,%d",
		int64(e.At), e.Kind, e.Thread, e.ThreadID, int64(e.Used), e.Runnable, int64(e.Service))
}
