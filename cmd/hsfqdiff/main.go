// Command hsfqdiff localizes the first divergent scheduling event between
// two simulation runs. Give it two configs (or one config under two
// seeds): if their event streams are identical it says so and exits 0;
// otherwise it reports the simulated time of the first event where the
// runs part ways and exits 3.
//
// Usage:
//
//	hsfqdiff -a before.json -b after.json
//	hsfqdiff -a sim.json -b sim.json -seed-a 1 -seed-b 2
//	hsfqdiff -a before.json -b after.json -grid 64
//	hsfqdiff -a before.json -b after.json -json
//
// The checkpoint-grid bisection itself lives in internal/tracediff
// (shared with hsfqd's POST /v1/diff endpoint); this command is a thin
// client. With -json it emits the tracediff.Result JSON document — the
// same schema the service returns — instead of the human-readable
// report, so scripts stop scraping text. Exit codes are identical in
// both modes.
//
// Exit status: 0 identical, 3 divergent, 1 error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/tracediff"
)

// exitDivergent mirrors hsfqsweep's mismatch code: the runs completed
// fine but their streams differ.
const exitDivergent = 3

func main() {
	var (
		aPath   = flag.String("a", "", "first simulation config (required)")
		bPath   = flag.String("b", "", "second simulation config (required)")
		seedA   = flag.Uint64("seed-a", 0, "seed override for -a")
		seedB   = flag.Uint64("seed-b", 0, "seed override for -b")
		grid    = flag.Int("grid", 16, "checkpoint instants per run; finer grids replay less")
		jsonOut = flag.Bool("json", false, "emit the result as JSON (the POST /v1/diff schema) instead of text")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	divergent, err := run(os.Stdout, *aPath, *bPath, *seedA, *seedB, *grid, *jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsfqdiff:", err)
		os.Exit(1)
	}
	if divergent {
		os.Exit(exitDivergent)
	}
}

// diff is the text-mode entry point (kept for tests and callers that
// scrape the human format).
func diff(w io.Writer, aPath, bPath string, seedA, seedB uint64, grid int) (bool, error) {
	return run(w, aPath, bPath, seedA, seedB, grid, false)
}

func run(w io.Writer, aPath, bPath string, seedA, seedB uint64, grid int, jsonOut bool) (bool, error) {
	a, err := load("a", aPath, seedA)
	if err != nil {
		return false, err
	}
	b, err := load("b", bPath, seedB)
	if err != nil {
		return false, err
	}
	warn := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hsfqdiff: "+format+"\n", args...)
	}
	res, err := tracediff.Diff(a, b, grid, warn)
	if err != nil {
		return false, err
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		if err := enc.Encode(res); err != nil {
			return false, err
		}
		return res.Divergent(), nil
	}
	if !res.Divergent() {
		fmt.Fprintf(w, "identical: %d event(s), digest %s\n", res.Rows, res.Digest)
		return false, nil
	}
	fmt.Fprintf(w, "divergence_at_ns=%d\n", res.DivergenceAtNs)
	fmt.Fprintf(w, "a: %s\nb: %s\n", res.FirstRows.A, res.FirstRows.B)
	fmt.Fprintf(w, "replayed from instant %d/%d (t=%v), %d vs %d event(s) in the window\n",
		res.ReplayFromInstant, res.Grid, sim.Time(res.ReplayFromNs), res.EventsA, res.EventsB)
	return true, nil
}

// load reads one side's config file.
func load(label, path string, seed uint64) (tracediff.Input, error) {
	f, err := os.Open(path)
	if err != nil {
		return tracediff.Input{}, err
	}
	cfg, err := simconfig.Parse(f)
	f.Close()
	if err != nil {
		return tracediff.Input{}, fmt.Errorf("%s: %w", path, err)
	}
	return tracediff.Input{Label: label, Config: cfg, Seed: seed}, nil
}
