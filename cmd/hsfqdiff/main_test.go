package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hsfq/internal/tracediff"
)

const baseConfig = `{
  "horizon": "2s",
  "seed": 5,
  "nodes": [
    {"path": "/rt", "weight": 3, "leaf": "edf", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "sfq", "quantum": "10ms"}
  ],
  "threads": [
    {"name": "cam", "leaf": "/rt", "program": {"kind": "periodic", "period": "33ms", "cost": "5ms"}},
    {"name": "job", "leaf": "/be", "program": {"kind": "loop"}},
    {"name": "chat", "leaf": "/be", "program": {"kind": "interactive", "think_mean": "40ms"}}
  ],
  "interrupts": [{"kind": "poisson", "rate_per_sec": 120, "service": "100us"}]
}`

func writeConfig(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffIdentical(t *testing.T) {
	a := writeConfig(t, "a.json", baseConfig)
	b := writeConfig(t, "b.json", baseConfig)
	var out strings.Builder
	divergent, err := diff(&out, a, b, 0, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if divergent {
		t.Fatalf("identical configs reported divergent:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "identical:") {
		t.Errorf("missing identical line: %s", out.String())
	}
}

var divergenceRE = regexp.MustCompile(`(?m)^divergence_at_ns=(\d+)$`)

// divergenceAt runs diff and returns the reported divergence instant.
func divergenceAt(t *testing.T, a, b string, seedA, seedB uint64, grid int) int64 {
	t.Helper()
	var out strings.Builder
	divergent, err := diff(&out, a, b, seedA, seedB, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !divergent {
		t.Fatalf("expected divergence, got:\n%s", out.String())
	}
	m := divergenceRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no divergence_at_ns line in:\n%s", out.String())
	}
	at, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return at
}

// TestDiffLateThread plants a thread that only starts at t=1s: the runs
// are identical for the first second, so the bisector must land on an
// instant at (or just before, if an unrelated event shares the tick)
// the 1s mark — and must have replayed from a late checkpoint, not tick
// zero.
func TestDiffLateThread(t *testing.T) {
	a := writeConfig(t, "a.json", baseConfig)
	// Appended last so existing thread IDs are unchanged: the runs really
	// are identical until the intruder wakes.
	late := strings.Replace(baseConfig, `"program": {"kind": "interactive", "think_mean": "40ms"}}`,
		`"program": {"kind": "interactive", "think_mean": "40ms"}},
    {"name": "intruder", "leaf": "/be", "start": "1s", "program": {"kind": "loop"}}`, 1)
	b := writeConfig(t, "b.json", late)

	var out strings.Builder
	divergent, err := diff(&out, a, b, 0, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !divergent {
		t.Fatal("late-start thread not detected")
	}
	m := divergenceRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no divergence_at_ns line in:\n%s", out.String())
	}
	at, _ := strconv.ParseInt(m[1], 10, 64)
	if at < 900e6 || at > 1100e6 {
		t.Errorf("divergence at %dns, want ~1s:\n%s", at, out.String())
	}
	// With a 16-point grid over 2s the prefixes agree through at least
	// instant 7 (t=875ms), so the replay window must not start at zero.
	if strings.Contains(out.String(), "replayed from instant 0/") {
		t.Errorf("bisector replayed from tick zero:\n%s", out.String())
	}
}

// TestDiffSeedSensitivity compares one config under two seeds: the
// Poisson interrupt arrivals differ immediately.
func TestDiffSeedSensitivity(t *testing.T) {
	a := writeConfig(t, "a.json", baseConfig)
	b := writeConfig(t, "b.json", baseConfig)
	at := divergenceAt(t, a, b, 1, 2, 4)
	if at > 500e6 {
		t.Errorf("seeded poisson runs diverged only at %dns", at)
	}
}

// TestDiffGridInvariance checks the reported instant does not depend on
// the grid resolution — only the replay window does.
func TestDiffGridInvariance(t *testing.T) {
	a := writeConfig(t, "a.json", baseConfig)
	b := writeConfig(t, "b.json", strings.Replace(baseConfig, `"rate_per_sec": 120`, `"rate_per_sec": 121`, 1))
	at1 := divergenceAt(t, a, b, 0, 0, 1)
	at16 := divergenceAt(t, a, b, 0, 0, 16)
	if at1 != at16 {
		t.Errorf("grid changed the answer: %d (grid 1) vs %d (grid 16)", at1, at16)
	}
}

func TestDiffErrors(t *testing.T) {
	good := writeConfig(t, "a.json", baseConfig)
	short := writeConfig(t, "s.json", strings.Replace(baseConfig, `"horizon": "2s"`, `"horizon": "1s"`, 1))
	bad := writeConfig(t, "bad.json", `{"horizon": "2s"}`)

	var out strings.Builder
	if _, err := diff(&out, good, short, 0, 0, 8); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("horizon mismatch: %v", err)
	}
	if _, err := diff(&out, good, bad, 0, 0, 8); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := diff(&out, good, filepath.Join(t.TempDir(), "nope.json"), 0, 0, 8); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := diff(&out, good, good, 0, 0, 0); err == nil {
		t.Error("zero grid accepted")
	}
}

// TestDiffJSONMode checks -json emits the tracediff schema with the same
// divergence verdict as the text mode.
func TestDiffJSONMode(t *testing.T) {
	a := writeConfig(t, "a.json", baseConfig)
	b := writeConfig(t, "b.json", strings.Replace(baseConfig, `"rate_per_sec": 120`, `"rate_per_sec": 121`, 1))
	var out strings.Builder
	divergent, err := run(&out, a, b, 0, 0, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if !divergent {
		t.Fatal("expected divergence")
	}
	var res tracediff.Result
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("bad JSON %q: %v", out.String(), err)
	}
	if res.Status != tracediff.StatusDivergent || res.DivergenceAtNs == 0 || res.FirstRows == nil {
		t.Fatalf("JSON result: %+v", res)
	}
	// Same verdict as the text mode.
	if at := divergenceAt(t, a, b, 0, 0, 8); at != res.DivergenceAtNs {
		t.Fatalf("json says %d, text says %d", res.DivergenceAtNs, at)
	}

	out.Reset()
	if divergent, err = run(&out, a, a, 0, 0, 8, true); err != nil || divergent {
		t.Fatalf("self-diff: %v %v", divergent, err)
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil || res.Status != tracediff.StatusIdentical {
		t.Fatalf("self-diff JSON: %q %v", out.String(), err)
	}
}
