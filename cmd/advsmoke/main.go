// Command advsmoke runs the adversarial workload suite: every registered
// attacker program against every leaf scheduler it applies to, at one and
// four cores, in process. Each cell pairs an attacker with a victim and a
// machine-checkable isolation predicate — policies that promise isolation
// (sfq, stride: Theorem 1) must keep the victim above its bound, and
// policies that are gameable by design (svr4, mlfq, edf, rm, fifo) must
// demonstrably lose to the attack, so an accidental behavior change in
// either direction fails the suite. The whole matrix runs twice and the
// outcome digests must match across runs: any failure reproduces
// bit-for-bit from the cell's config alone and bisects under hsfqdiff.
//
// Usage:
//
//	advsmoke              # run the matrix at 1 and 4 cores
//	advsmoke -cores 1     # single-core matrix only
//	advsmoke -list        # print the matrix without running it
//	advsmoke -v           # print every cell's digest and victim share
//
// Exit status 0 when every predicate holds and the matrix is
// deterministic; 1 otherwise, with the violated predicate named on one
// stderr line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hsfq/internal/adversary"
)

func main() {
	var (
		coresFlag = flag.String("cores", "1,4", "comma-separated core counts to run the matrix at")
		list      = flag.Bool("list", false, "print the attack matrix and exit")
		verbose   = flag.Bool("v", false, "print every cell's outcome, not just failures")
	)
	flag.Parse()

	coreCounts, err := parseCores(*coresFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "advsmoke:", err)
		os.Exit(2)
	}

	cells := adversary.Matrix(coreCounts)
	if *list {
		for _, c := range cells {
			fmt.Printf("%-28s expect=%-8s predicate=%s\n", c.ID(), c.Expect, c.Predicate)
		}
		return
	}

	if err := run(cells, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "advsmoke:", err)
		os.Exit(1)
	}
	fmt.Printf("advsmoke: %d cells passed, matrix deterministic\n", len(cells))
}

func run(cells []adversary.Cell, verbose bool) error {
	digests := make(map[string]string, len(cells))
	for _, c := range cells {
		r, err := c.Run()
		if err != nil {
			return err
		}
		if verbose {
			fmt.Printf("%-28s expect=%-8s share=%.4f digest=%s\n", c.ID(), c.Expect, r.VictimShare, r.Digest[:12])
		}
		if r.Violation != "" {
			return fmt.Errorf("%s", r.Violation)
		}
		digests[c.ID()] = r.Digest
	}
	// Second pass: the determinism contract. Identical configs must
	// reproduce identical outcome digests, or no suite result can be
	// trusted as bisectable.
	for _, c := range cells {
		r, err := c.Run()
		if err != nil {
			return err
		}
		if r.Digest != digests[c.ID()] {
			return fmt.Errorf("%s: digest changed across runs: %s then %s", c.ID(), digests[c.ID()], r.Digest)
		}
	}
	return nil
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no core counts in %q", s)
	}
	return out, nil
}
