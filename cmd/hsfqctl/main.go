// Command hsfqctl builds and inspects scheduling structures offline by
// interpreting a small script whose commands mirror the paper's system
// calls (hsfq_mknod, hsfq_parse, hsfq_rmnod, hsfq_admin):
//
//	mknod PATH WEIGHT [LEAF [QUANTUM]]   create a node (LEAF: any
//	                                     registered leaf scheduler; run
//	                                     hsfqctl -h for the current list)
//	parse PATH                           resolve a path to a node id
//	rmnod PATH                           remove an empty node
//	weight PATH W                        change a node's weight
//	bandwidth PATH                       guaranteed share of the CPU
//	info PATH                            node details
//	tree                                 print the whole structure
//	dot                                  print the structure as DOT
//	check                                verify structural invariants
//	# ...                                comment
//
// The script is read from the file named by -f, or standard input.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
)

func main() {
	file := flag.String("f", "", "script file (default: stdin)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hsfqctl [-f script]\n\nleaf kinds (mknod LEAF argument): %s\n\nflags:\n",
			strings.Join(sched.Names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hsfqctl:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := Interpret(in, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hsfqctl:", err)
		os.Exit(1)
	}
}

// Interpret executes an hsfqctl script against a fresh structure.
func Interpret(in io.Reader, out io.Writer) error {
	s := core.NewStructure()
	scanner := bufio.NewScanner(in)
	lineno := 0
	for scanner.Scan() {
		lineno++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := exec(s, line, out); err != nil {
			return fmt.Errorf("line %d (%q): %w", lineno, line, err)
		}
	}
	return scanner.Err()
}

func exec(s *core.Structure, line string, out io.Writer) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("%s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	resolve := func(path string) (core.NodeID, error) {
		return s.Parse(path, core.RootID)
	}
	switch cmd {
	case "mknod":
		if err := need(2); err != nil {
			return err
		}
		weight, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("bad weight %q", args[1])
		}
		var leaf sched.Scheduler
		if len(args) >= 3 {
			quantum := sim.Time(0)
			if len(args) >= 4 {
				d, err := time.ParseDuration(args[3])
				if err != nil {
					return fmt.Errorf("bad quantum %q", args[3])
				}
				quantum = sim.Duration(d)
			}
			leaf, err = makeLeaf(args[2], quantum)
			if err != nil {
				return err
			}
		}
		id, err := s.MknodPath(args[0], weight, leaf)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "mknod %s -> node %d\n", args[0], id)
	case "parse":
		if err := need(1); err != nil {
			return err
		}
		id, err := resolve(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "parse %s -> node %d\n", args[0], id)
	case "rmnod":
		if err := need(1); err != nil {
			return err
		}
		id, err := resolve(args[0])
		if err != nil {
			return err
		}
		if err := s.Rmnod(id); err != nil {
			return err
		}
		fmt.Fprintf(out, "rmnod %s: ok\n", args[0])
	case "weight":
		if err := need(2); err != nil {
			return err
		}
		id, err := resolve(args[0])
		if err != nil {
			return err
		}
		w, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("bad weight %q", args[1])
		}
		if err := s.SetNodeWeight(id, w); err != nil {
			return err
		}
		fmt.Fprintf(out, "weight %s = %g\n", args[0], w)
	case "bandwidth":
		if err := need(1); err != nil {
			return err
		}
		id, err := resolve(args[0])
		if err != nil {
			return err
		}
		bw, err := s.Bandwidth(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bandwidth %s = %.4f\n", args[0], bw)
	case "info":
		if err := need(1); err != nil {
			return err
		}
		id, err := resolve(args[0])
		if err != nil {
			return err
		}
		info, err := s.Info(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "node %d path=%s weight=%g leaf=%v(%s) runnable=%v children=%d threads=%d\n",
			info.ID, info.Path, info.Weight, info.Leaf, info.LeafName, info.Runnable,
			len(info.Children), info.Threads)
	case "tree":
		fmt.Fprint(out, s.String())
	case "dot":
		if err := s.WriteDOT(out); err != nil {
			return err
		}
	case "check":
		if err := s.CheckInvariants(); err != nil {
			return err
		}
		fmt.Fprintln(out, "check: ok")
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

func makeLeaf(kind string, quantum sim.Time) (sched.Scheduler, error) {
	return sched.New(kind, sched.LeafConfig{Quantum: quantum, IPS: int64(cpu.DefaultRate)})
}
