package main

import (
	"strings"
	"testing"

	"hsfq/internal/core"
	"hsfq/internal/cpu"
	"hsfq/internal/sched"
)

func TestInterpretFig2Script(t *testing.T) {
	script := `
# the paper's Fig. 2 structure
mknod /hard-real-time 1 edf 10ms
mknod /soft-real-time 3 sfq 10ms
mknod /best-effort 6
mknod /best-effort/user1 1 sfq
mknod /best-effort/user2 1 svr4 25ms
parse /best-effort/user1
bandwidth /best-effort/user1
weight /soft-real-time 4
info /soft-real-time
tree
check
`
	var out strings.Builder
	if err := Interpret(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"mknod /hard-real-time -> node",
		"parse /best-effort/user1 -> node",
		"bandwidth /best-effort/user1 = 0.3000",
		"weight /soft-real-time = 4",
		"leaf=true(sfq)",
		"check: ok",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestInterpretRmnodAndDot(t *testing.T) {
	script := `
mknod /a 1
mknod /a/b 2 sfq
rmnod /a/b
rmnod /a
dot
`
	var out strings.Builder
	if err := Interpret(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Error("dot output missing")
	}
}

func TestInterpretErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"mknod /x",
		"mknod /x notanumber",
		"mknod /x 1 nosuchleaf",
		"mknod /x 1 sfq notaduration",
		"parse /missing",
		"rmnod /missing",
		"weight / 2",
		"weight /missing 2",
		"bandwidth /missing",
		"info /missing",
	}
	for _, script := range cases {
		var out strings.Builder
		if err := Interpret(strings.NewReader(script), &out); err == nil {
			t.Errorf("script %q did not fail", script)
		}
	}
}

func TestInterpretAllLeafKinds(t *testing.T) {
	var lines []string
	for _, kind := range []string{"sfq", "rr", "fifo", "priority", "reserves", "edf", "rm", "svr4", "lottery", "stride", "eevdf"} {
		lines = append(lines, "mknod /"+kind+" 1 "+kind+" 10ms")
	}
	lines = append(lines, "check")
	var out strings.Builder
	if err := Interpret(strings.NewReader(strings.Join(lines, "\n")), &out); err != nil {
		t.Fatal(err)
	}
}

// TestScriptRoundTrip: a structure exported with WriteScript rebuilds to
// the same shape when interpreted.
func TestScriptRoundTrip(t *testing.T) {
	original := `
mknod /hard 1 edf
mknod /soft 3 sfq
mknod /be 6
mknod /be/u1 1 sfq
mknod /be/u2 2 svr4
`
	var out strings.Builder
	if err := Interpret(strings.NewReader(original), &out); err != nil {
		t.Fatal(err)
	}
	// Rebuild by hand to export it.
	s := core.NewStructure()
	mustMk := func(path string, w float64, leaf sched.Scheduler) {
		if _, err := s.MknodPath(path, w, leaf); err != nil {
			t.Fatal(err)
		}
	}
	mustMk("/hard", 1, sched.NewEDF(0))
	mustMk("/soft", 3, sched.NewSFQ(0))
	mustMk("/be", 6, nil)
	mustMk("/be/u1", 1, sched.NewSFQ(0))
	mustMk("/be/u2", 2, sched.NewSVR4(nil, int64(cpu.DefaultRate), 0))

	var script strings.Builder
	if err := s.WriteScript(&script); err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	if err := Interpret(strings.NewReader(script.String()+"\ntree\ncheck\n"), &out2); err != nil {
		t.Fatalf("re-interpreting exported script: %v\n%s", err, script.String())
	}
	for _, want := range []string{"u1", "u2", "leaf=svr4", "w=6", "check: ok"} {
		if !strings.Contains(out2.String(), want) {
			t.Errorf("rebuilt tree missing %q:\n%s", want, out2.String())
		}
	}
}
