package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"hsfq/internal/server"
)

// TestServeAndDrain runs the daemon's real lifecycle in-process: serve a
// request, deliver SIGTERM, and require readyz to flip, the listener to
// close, in-flight work to finish, and serve to return nil.
func TestServeAndDrain(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + l.Addr().String()

	srv := server.New(server.Config{Workers: 2, QueueDepth: 4})
	hs := &http.Server{Addr: l.Addr().String(), Handler: srv}
	sigCh := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(hs, srv, sigCh, 10*time.Second, l) }()

	waitOK(t, addr+"/readyz")
	resp, err := http.Post(addr+"/v1/simulate", "application/json", strings.NewReader(
		`{"horizon":"50ms","nodes":[{"path":"/a","leaf":"sfq","quantum":"5ms"}],"threads":[{"name":"t","leaf":"/a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}

	sigCh <- syscall.SIGTERM
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain within 10s of SIGTERM")
	}
	m := srv.Snapshot()
	if m.Ready || m.InFlight != 0 || m.TasksDone != 1 {
		t.Errorf("after drain: ready=%v inflight=%d done=%d", m.Ready, m.InFlight, m.TasksDone)
	}
	// The listener is really closed: new connections are refused.
	if _, err := http.Get(addr + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

func waitOK(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", url)
}
