package main

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hsfq/internal/server"
)

// TestServeAndDrain runs the daemon's real lifecycle in-process: serve a
// request, deliver SIGTERM, and require readyz to flip, the listener to
// close, in-flight work to finish, and serve to return nil.
func TestServeAndDrain(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + l.Addr().String()

	srv := server.New(server.Config{Workers: 2, QueueDepth: 4})
	hs := &http.Server{Addr: l.Addr().String(), Handler: srv}
	sigCh := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveListener(hs, srv, sigCh, 10*time.Second, l) }()

	waitOK(t, addr+"/readyz")
	resp, err := http.Post(addr+"/v1/simulate", "application/json", strings.NewReader(
		`{"horizon":"50ms","nodes":[{"path":"/a","leaf":"sfq","quantum":"5ms"}],"threads":[{"name":"t","leaf":"/a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}

	sigCh <- syscall.SIGTERM
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain within 10s of SIGTERM")
	}
	m := srv.Snapshot()
	if m.Ready || m.InFlight != 0 || m.TasksDone != 1 {
		t.Errorf("after drain: ready=%v inflight=%d done=%d", m.Ready, m.InFlight, m.TasksDone)
	}
	// The listener is really closed: new connections are refused.
	if _, err := http.Get(addr + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestReloadPolicy drives the SIGHUP handler directly: a reload swaps
// the live policy (observable as identity enforcement flipping on), and
// a subsequent bad file keeps the last good policy instead of failing
// open.
func TestReloadPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.json")
	srv := server.New(server.Config{Workers: 1, QueueDepth: 2})
	defer srv.Drain()
	hupCh := make(chan os.Signal)
	go reloadPolicy(srv, path, hupCh)
	defer close(hupCh)

	status := func(tenant string) int {
		req := httptest.NewRequest("POST", "/v1/simulate", strings.NewReader("{}"))
		req.Header.Set("X-Tenant", tenant)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	// Open default policy: unknown tenants are admitted (the empty body
	// then fails validation with 400).
	if got := status("stranger"); got != 400 {
		t.Fatalf("before reload: %d, want 400", got)
	}
	if err := os.WriteFile(path, []byte(`{"strict": true, "tenants": {"acme": {"weight": 2}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hupCh <- syscall.SIGHUP
	deadline := time.Now().Add(5 * time.Second)
	for status("stranger") != 403 {
		if time.Now().After(deadline) {
			t.Fatal("strict policy never took effect after SIGHUP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A corrupt file on the next SIGHUP keeps the strict policy.
	if err := os.WriteFile(path, []byte(`{"strict": `), 0o644); err != nil {
		t.Fatal(err)
	}
	hupCh <- syscall.SIGHUP
	time.Sleep(50 * time.Millisecond)
	if got := status("stranger"); got != 403 {
		t.Errorf("after bad reload: %d, want 403 (last good policy)", got)
	}
}

func waitOK(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", url)
}
