// Command hsfqd is the simulation-serving daemon: a long-running HTTP
// service that validates scenario and sweep specs through the simconfig
// pipeline, executes them on a bounded worker pool with queue-depth
// admission control (429 + Retry-After when full) and per-request
// deadlines, and serves repeated requests byte-identically from a
// content-addressed cache keyed by canonical job digests.
//
// Usage:
//
//	hsfqd -addr :8377
//	curl -s localhost:8377/v1/simulate -d @scenario.json   # run (or hit the cache)
//	curl -s localhost:8377/v1/jobs/<key>                   # retrieve by content address
//	curl -s localhost:8377/v1/jobs -d '{"jobs":[...]}'     # batch claim (hsfqmesh backend)
//	curl -s localhost:8377/metrics                         # queue, cache, latency
//
// SIGTERM/SIGINT drain gracefully: /readyz flips to 503, the listener
// stops accepting, in-flight requests (and their jobs) finish, then the
// process exits 0.
//
// With -policy, requests are scheduled per tenant (X-Tenant / X-API-Key
// headers) by a weighted hierarchical SFQ tree instead of a global FIFO:
// the policy file sets per-tenant weights, admission quotas, and API
// keys, and SIGHUP reloads it in place (a bad file logs and keeps the
// old policy). Without -policy all traffic shares the default tenant and
// behaves exactly like the FIFO it replaced.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsfq/internal/server"
	"hsfq/internal/tenantsched"
)

func main() {
	var (
		addr         = flag.String("addr", ":8377", "listen address")
		workers      = flag.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "admission queue depth; beyond it requests are shed with 429")
		sweepWorkers = flag.Int("sweep-workers", 0, "parallelism inside one sweep request (0 = workers)")
		cacheEntries = flag.Int("cache-entries", 1024, "result cache entry cap")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result cache byte cap")
		cacheDir     = flag.String("cache-dir", "", "disk spill directory for evicted results (empty = memory only)")
		ckptDir      = flag.String("checkpoint-dir", "", "checkpoint store: resume simulations whose horizon extends a previously served run (empty = always simulate from tick zero)")
		verifyCache  = flag.Float64("verify-cache", 0, "fraction of cache hits to re-execute and byte-compare (0..1)")
		maxBatch     = flag.Int("max-batch", 256, "max jobs per POST /v1/jobs claim")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline (queue wait + execution)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		policyPath   = flag.String("policy", "", "tenant policy JSON (weights, quotas, API keys); SIGHUP reloads it")
		traceBytes   = flag.Int("trace-bytes", 4<<20, "per-run trace recording byte cap for GET /v1/trace/{key} (0 disables tracing)")
		traceCache   = flag.Int64("trace-cache-bytes", 32<<20, "total byte cap across retained finished trace recordings")
	)
	flag.Parse()

	var pol *tenantsched.Policy
	if *policyPath != "" {
		p, err := tenantsched.LoadPolicy(*policyPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hsfqd:", err)
			os.Exit(1)
		}
		pol = p
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		SweepWorkers:    *sweepWorkers,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		CacheDir:        *cacheDir,
		VerifyFraction:  *verifyCache,
		MaxBatch:        *maxBatch,
		RequestTimeout:  *timeout,
		CheckpointDir:   *ckptDir,
		Policy:          pol,
		TraceBytes:      *traceBytes,
		TraceCacheBytes: *traceCache,
	})
	if *policyPath != "" {
		hupCh := make(chan os.Signal, 1)
		signal.Notify(hupCh, syscall.SIGHUP)
		go reloadPolicy(srv, *policyPath, hupCh)
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	if err := serve(&http.Server{Addr: *addr, Handler: srv}, srv, sigCh, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "hsfqd:", err)
		os.Exit(1)
	}
}

// reloadPolicy re-reads the policy file on each SIGHUP and hot-swaps it
// into the running server; a file that fails to load or validate keeps
// the current policy, so a botched edit cannot take the daemon down.
func reloadPolicy(srv *server.Server, path string, hupCh <-chan os.Signal) {
	for range hupCh {
		p, err := tenantsched.LoadPolicy(path)
		if err != nil {
			log.Printf("hsfqd: SIGHUP: %v (keeping current policy)", err)
			continue
		}
		srv.SetPolicy(p)
		log.Printf("hsfqd: SIGHUP: reloaded tenant policy from %s (%d tenant(s))", path, len(p.TenantNames()))
	}
}

// serve runs hs until a signal arrives, then drains gracefully: readiness
// flips first (load balancers stop routing), the listener closes and
// in-flight requests finish (bounded by drainTimeout), and finally the
// worker pool runs dry.
func serve(hs *http.Server, srv *server.Server, sigCh <-chan os.Signal, drainTimeout time.Duration) error {
	return serveListener(hs, srv, sigCh, drainTimeout, nil)
}

// serveListener is serve with an injectable listener so tests can bind
// port 0; l == nil listens on hs.Addr.
func serveListener(hs *http.Server, srv *server.Server, sigCh <-chan os.Signal, drainTimeout time.Duration, l net.Listener) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigCh
		log.Printf("hsfqd: %v: draining (readyz now 503, finishing in-flight jobs)", sig)
		srv.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("hsfqd: shutdown: %v", err)
		}
		srv.Drain()
		m := srv.Snapshot()
		log.Printf("hsfqd: drained: %d job(s) served, %d shed, cache %d/%d hit/miss",
			m.TasksDone, m.Shed, m.Cache.Hits, m.Cache.Misses)
	}()

	m := srv.Snapshot()
	log.Printf("hsfqd: listening on %s (workers=%d queue=%d)", hs.Addr, m.Workers, m.QueueCapacity)
	var err error
	if l != nil {
		err = hs.Serve(l)
	} else {
		err = hs.ListenAndServe()
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-done
	return nil
}
