// Command meshsmoke is the end-to-end harness for the distributed sweep
// path. It proves the two properties hsfqmesh sells, against real
// processes over real sockets:
//
//  1. Fault tolerance without output drift: a sweep dispatched across two
//     hsfqd daemons — one of them SIGKILLed mid-sweep, hedging on —
//     produces JSONL byte-identical to a serial hsfqsweep run, exit 0.
//  2. Corruption detection: a backend whose responses are tampered with
//     (a harness-side reverse proxy flips one hex digit in every outcome
//     digest) is quarantined, the run exits 3, and the output is still
//     byte-identical because every affected job was re-run locally.
//
// Usage:
//
//	meshsmoke -hsfqsweep /tmp/hsfqsweep -hsfqd /tmp/hsfqd -hsfqmesh /tmp/hsfqmesh \
//	          -spec examples/sweeps/mesh.json
//
// Exit status 0 when both legs hold, 1 otherwise.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"time"

	"hsfq/internal/testutil"
)

func main() {
	var (
		sweepBin = flag.String("hsfqsweep", "", "path to an hsfqsweep binary (required)")
		hsfqdBin = flag.String("hsfqd", "", "path to an hsfqd binary (required)")
		meshBin  = flag.String("hsfqmesh", "", "path to an hsfqmesh binary (required)")
		specPath = flag.String("spec", "examples/sweeps/mesh.json", "sweep spec to run")
	)
	flag.Parse()
	if *sweepBin == "" || *hsfqdBin == "" || *meshBin == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*sweepBin, *hsfqdBin, *meshBin, *specPath); err != nil {
		fmt.Fprintln(os.Stderr, "meshsmoke:", err)
		os.Exit(1)
	}
}

func run(sweepBin, hsfqdBin, meshBin, specPath string) error {
	dir, err := os.MkdirTemp("", "meshsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Reference: the serial local run every distributed output must match.
	serialPath := filepath.Join(dir, "serial.jsonl")
	start := time.Now()
	cmd := exec.Command(sweepBin, "-spec", specPath, "-o", serialPath, "-summary=false")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("serial hsfqsweep: %w", err)
	}
	serialDur := time.Since(start)
	serial, err := os.ReadFile(serialPath)
	if err != nil {
		return err
	}
	fmt.Printf("meshsmoke: serial reference: %d bytes in %v\n", len(serial), serialDur.Round(time.Millisecond))

	if err := killLeg(hsfqdBin, meshBin, specPath, dir, serial, serialDur); err != nil {
		return fmt.Errorf("kill leg: %w", err)
	}
	if err := corruptionLeg(hsfqdBin, meshBin, specPath, dir, serial); err != nil {
		return fmt.Errorf("corruption leg: %w", err)
	}
	return nil
}

// killLeg runs the sweep over two daemons and SIGKILLs one mid-sweep; the
// output must still be byte-identical and the exit status 0.
func killLeg(hsfqdBin, meshBin, specPath, dir string, serial []byte, serialDur time.Duration) error {
	d1, url1, err := spawnDaemon(hsfqdBin)
	if err != nil {
		return err
	}
	defer stopDaemon(d1)
	d2, url2, err := spawnDaemon(hsfqdBin)
	if err != nil {
		return err
	}
	defer stopDaemon(d2)

	outPath := filepath.Join(dir, "mesh.jsonl")
	var stderr bytes.Buffer
	mesh := exec.Command(meshBin,
		"-spec", specPath,
		"-backends", url1+","+url2,
		"-o", outPath,
		"-summary=false",
		"-batch", "4",
		"-retries", "3",
		"-timeout", "30s",
		"-hedge-after", "500ms",
		"-verify", "0.2")
	mesh.Stdout = os.Stdout
	mesh.Stderr = &stderr
	if err := mesh.Start(); err != nil {
		return err
	}
	// Kill one backend roughly a quarter of the serial wall clock in: with
	// two backends plus hedging the run takes longer than that, so the
	// kill lands mid-sweep.
	killAt := serialDur / 4
	if killAt < 50*time.Millisecond {
		killAt = 50 * time.Millisecond
	}
	time.Sleep(killAt)
	if err := d2.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILLing backend 2: %w", err)
	}
	fmt.Printf("meshsmoke: SIGKILLed backend %s after %v\n", url2, killAt.Round(time.Millisecond))
	if err := mesh.Wait(); err != nil {
		os.Stderr.Write(stderr.Bytes())
		return fmt.Errorf("hsfqmesh failed after backend kill: %w", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	if d := testutil.DiffBytes(got, serial); d != "" {
		return fmt.Errorf("mesh output differs from serial run: %s", d)
	}
	fmt.Printf("meshsmoke: kill leg ok: output byte-identical to serial (%d bytes)\n%s", len(got), indent(stderr.Bytes()))
	return nil
}

// corruptionLeg fronts one daemon with a digest-tampering proxy and
// requires hsfqmesh to detect it: exit 3, quarantine on stderr, output
// still byte-identical (repaired by local re-execution).
func corruptionLeg(hsfqdBin, meshBin, specPath, dir string, serial []byte) error {
	d, durl, err := spawnDaemon(hsfqdBin)
	if err != nil {
		return err
	}
	defer stopDaemon(d)
	proxy, err := corruptingProxy(durl)
	if err != nil {
		return err
	}
	defer proxy.Close()

	outPath := filepath.Join(dir, "corrupt.jsonl")
	var stderr bytes.Buffer
	mesh := exec.Command(meshBin,
		"-spec", specPath,
		"-backends", "http://"+proxy.Addr().String(),
		"-o", outPath,
		"-summary=false",
		"-batch", "4",
		"-verify", "1")
	mesh.Stdout = os.Stdout
	mesh.Stderr = &stderr
	err = mesh.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		os.Stderr.Write(stderr.Bytes())
		return fmt.Errorf("hsfqmesh against corrupt backend: err %v, want exit status 3", err)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("QUARANTINED")) {
		os.Stderr.Write(stderr.Bytes())
		return fmt.Errorf("no quarantine report on stderr")
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		return err
	}
	if d := testutil.DiffBytes(got, serial); d != "" {
		return fmt.Errorf("corrupted-backend output not repaired: %s", d)
	}
	fmt.Printf("meshsmoke: corruption leg ok: exit 3, backend quarantined, output repaired (%d bytes)\n", len(got))
	return nil
}

type daemon struct {
	*exec.Cmd
}

func spawnDaemon(hsfqdBin string) (*daemon, string, error) {
	port, err := freePort()
	if err != nil {
		return nil, "", err
	}
	url := fmt.Sprintf("http://127.0.0.1:%d", port)
	cmd := exec.Command(hsfqdBin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "2", "-sweep-workers", "2", "-queue", "16")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("spawning %s: %w", hsfqdBin, err)
	}
	if err := waitReady(url, 5*time.Second); err != nil {
		cmd.Process.Kill()
		return nil, "", err
	}
	return &daemon{cmd}, url, nil
}

func stopDaemon(d *daemon) {
	if d.Process != nil {
		d.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { d.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			d.Process.Kill()
			<-done
		}
	}
}

// digestRE matches a JSON digest field; the proxy flips its first digit.
var digestRE = regexp.MustCompile(`"digest":"[0-9a-f]`)

// corruptingProxy reverse-proxies a daemon, tampering every outcome
// digest in POST /v1/jobs responses while leaving health endpoints alone
// — a stand-in for a backend with bit rot or a diverging build.
func corruptingProxy(backend string) (net.Listener, error) {
	u, err := url.Parse(backend)
	if err != nil {
		return nil, err
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	rp.ModifyResponse = func(resp *http.Response) error {
		if resp.Request.Method != http.MethodPost || resp.Request.URL.Path != "/v1/jobs" {
			return nil
		}
		body, err := readAll(resp)
		if err != nil {
			return err
		}
		body = digestRE.ReplaceAllFunc(body, func(m []byte) []byte {
			c := m[len(m)-1]
			if c == '0' {
				m[len(m)-1] = '1'
			} else {
				m[len(m)-1] = '0'
			}
			return m
		})
		resp.Body = newBody(body)
		resp.ContentLength = int64(len(body))
		resp.Header.Set("Content-Length", fmt.Sprint(len(body)))
		return nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go http.Serve(l, rp)
	return l, nil
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

func newBody(b []byte) *bodyReader { return &bodyReader{bytes.NewReader(b)} }

type bodyReader struct{ *bytes.Reader }

func (bodyReader) Close() error { return nil }

func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s not ready within %v", addr, timeout)
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// indent prefixes harness-captured hsfqmesh stderr for readable nesting.
func indent(b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	var out bytes.Buffer
	for _, line := range bytes.Split(bytes.TrimRight(b, "\n"), []byte("\n")) {
		out.WriteString("  | ")
		out.Write(line)
		out.WriteByte('\n')
	}
	return out.Bytes()
}
