// Command hsfqload fires concurrent mixed hit/miss traffic at an hsfqd
// and asserts its serving invariants: zero 5xx responses, 429 only as
// load shedding (every request eventually succeeds on retry), and
// byte-identical bodies for every repeat of the same scenario. With
// -hsfqd it spawns the daemon itself on a free port, and finishes by
// sending SIGTERM and requiring a clean drain (exit 0).
//
// Usage:
//
//	hsfqload -hsfqd /tmp/hsfqd -n 64 -c 64 -queue 16 -workers 4
//	hsfqload -addr http://localhost:8377 -n 128
//
// Exit status 0 on success, 1 on any violated invariant.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target daemon base URL (used when -hsfqd is empty)")
		hsfqd     = flag.String("hsfqd", "", "path to an hsfqd binary to spawn (and SIGTERM at the end)")
		n         = flag.Int("n", 64, "total requests")
		c         = flag.Int("c", 64, "concurrent client goroutines")
		scenarios = flag.Int("scenarios", 8, "distinct scenarios (the hit/miss mix: n/scenarios repeats each)")
		queue     = flag.Int("queue", 16, "spawned daemon's -queue")
		workers   = flag.Int("workers", 4, "spawned daemon's -workers")
	)
	flag.Parse()
	if err := run(*addr, *hsfqd, *n, *c, *scenarios, *queue, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "hsfqload:", err)
		os.Exit(1)
	}
}

func run(addr, hsfqd string, n, c, scenarios, queue, workers int) error {
	var daemon *exec.Cmd
	if hsfqd != "" {
		port, err := freePort()
		if err != nil {
			return err
		}
		addr = fmt.Sprintf("http://127.0.0.1:%d", port)
		daemon = exec.Command(hsfqd,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-queue", fmt.Sprint(queue),
			"-workers", fmt.Sprint(workers),
			"-verify-cache", "0.1")
		daemon.Stderr = os.Stderr
		if err := daemon.Start(); err != nil {
			return fmt.Errorf("spawning %s: %w", hsfqd, err)
		}
		if err := waitReady(addr, 5*time.Second); err != nil {
			daemon.Process.Kill()
			return err
		}
	} else if addr == "" {
		return fmt.Errorf("need -addr or -hsfqd")
	}

	stats, err := fire(addr, n, c, scenarios)
	if err != nil {
		if daemon != nil {
			daemon.Process.Kill()
		}
		return err
	}
	fmt.Printf("hsfqload: %d requests over %d scenario(s): %d ok, %d shed-then-retried, 0 server errors, bodies byte-identical\n",
		n, scenarios, n, stats.shed)

	if daemon != nil {
		// Graceful drain: SIGTERM must flip readyz and exit 0.
		if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		exited := make(chan error, 1)
		go func() { exited <- daemon.Wait() }()
		select {
		case err := <-exited:
			if err != nil {
				return fmt.Errorf("daemon did not drain cleanly: %w", err)
			}
		case <-time.After(10 * time.Second):
			daemon.Process.Kill()
			return fmt.Errorf("daemon did not exit within 10s of SIGTERM")
		}
		fmt.Println("hsfqload: SIGTERM drain clean (exit 0)")
	}
	return nil
}

// scenario is a small mixed workload; the seed makes each index a
// distinct job (distinct content address) with an identical structure.
func scenario(i int) string {
	return fmt.Sprintf(`{
	  "rate_mips": 100,
	  "horizon": "100ms",
	  "seed": %d,
	  "nodes": [
	    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "5ms"},
	    {"path": "/be", "weight": 1, "leaf": "rr"}
	  ],
	  "threads": [
	    {"name": "dec", "leaf": "/soft", "weight": 2, "program": {"kind": "mpeg", "loop": true}},
	    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
	  ]
	}`, i+1)
}

type loadStats struct {
	shed int
}

// fire issues n POSTs (round-robin over the scenarios) from c goroutines,
// retrying shed (429) requests, and checks the invariants.
func fire(addr string, n, c, scenarios int) (*loadStats, error) {
	var (
		mu     sync.Mutex
		bodies = map[int][]byte{}
		stats  loadStats
		errs   []error
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sc := i % scenarios
				body, shed, err := request(addr, scenario(sc))
				mu.Lock()
				stats.shed += shed
				if err != nil {
					errs = append(errs, fmt.Errorf("request %d: %w", i, err))
				} else if prev, ok := bodies[sc]; !ok {
					bodies[sc] = body
				} else if string(prev) != string(body) {
					errs = append(errs, fmt.Errorf("scenario %d: response bytes differ across requests", sc))
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	if len(bodies) != scenarios {
		return nil, fmt.Errorf("saw %d scenarios, want %d", len(bodies), scenarios)
	}
	return &stats, nil
}

// request POSTs one scenario, retrying 429s; any 5xx is an immediate
// failure.
func request(addr, body string) ([]byte, int, error) {
	shed := 0
	for attempt := 0; attempt < 400; attempt++ {
		resp, err := http.Post(addr+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, shed, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, shed, err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return b, shed, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			shed++
			time.Sleep(5 * time.Millisecond)
		case resp.StatusCode >= 500:
			return nil, shed, fmt.Errorf("server error %d: %s", resp.StatusCode, b)
		default:
			return nil, shed, fmt.Errorf("status %d: %s", resp.StatusCode, b)
		}
	}
	return nil, shed, fmt.Errorf("starved: still shed after 400 attempts")
}

func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s not ready within %v", addr, timeout)
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}
