// Command hsfqload fires concurrent mixed hit/miss traffic at an hsfqd
// and asserts its serving invariants: zero 5xx responses, 429 only as
// load shedding (every request eventually succeeds on retry), and
// byte-identical bodies for every repeat of the same scenario. With
// -hsfqd it spawns the daemon itself on a free port, and finishes by
// sending SIGTERM and requiring a clean drain (exit 0).
//
// Two multi-tenant modes exercise the tenant scheduler end to end:
//
//   - -tenants "gold:4,bronze:1" saturates the daemon from every listed
//     tenant at once and requires each tenant's completed-request
//     throughput to be proportional to its weight (within a fairness
//     tolerance), plus cross-tenant byte-identity for a shared scenario.
//   - -flood <attacker> (with the attacker and a victim in -tenants)
//     measures the victim's p99 latency alone, then again under a
//     sustained attacker flood, and fails unless
//     p99_flood <= bound x max(p99_alone, floor): the paper's isolation
//     claim, measured at the serving layer.
//
// Usage:
//
//	hsfqload -hsfqd /tmp/hsfqd -n 64 -c 64 -queue 16 -workers 4
//	hsfqload -addr http://localhost:8377 -n 128
//	hsfqload -hsfqd /tmp/hsfqd -policy tenants.json -tenants gold:4,bronze:1
//	hsfqload -hsfqd /tmp/hsfqd -policy tenants.json -tenants victim:1,flood:1 -flood flood
//	hsfqload -hsfqd /tmp/hsfqd -trace 4
//
// -trace K streams one live job over GET /v1/trace/{key}?follow=1 to K
// fast readers plus one deliberately slow one: fast streams must be
// gap-free with a row hash matching the engine's trace digest, the slow
// one must get exact drop accounting instead of backpressure, and a
// SIGTERM with a stream open must close it cleanly.
//
// Exit status 0 on success, 1 on any violated invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target daemon base URL (used when -hsfqd is empty)")
		hsfqd     = flag.String("hsfqd", "", "path to an hsfqd binary to spawn (and SIGTERM at the end)")
		n         = flag.Int("n", 64, "total requests")
		c         = flag.Int("c", 64, "concurrent client goroutines")
		scenarios = flag.Int("scenarios", 8, "distinct scenarios (the hit/miss mix: n/scenarios repeats each)")
		queue     = flag.Int("queue", 16, "spawned daemon's -queue")
		workers   = flag.Int("workers", 4, "spawned daemon's -workers")
		policy    = flag.String("policy", "", "tenant policy file passed to the spawned daemon's -policy")
		tenants   = flag.String("tenants", "", `weighted tenant load, e.g. "gold:4,bronze:1" (weights must match the policy)`)
		flood     = flag.String("flood", "", "isolation mode: attacker tenant name (must appear in -tenants; the others are victims)")
		bound     = flag.Float64("bound", 10, "flood mode: max allowed victim p99 degradation factor")
		duration  = flag.Duration("duration", 3*time.Second, "tenant/flood mode: load duration per phase")
		traceK    = flag.Int("trace", 0, "trace mode: K concurrent follow streams of one live job, plus one deliberately slow reader (0 = off)")
	)
	flag.Parse()

	var err error
	switch {
	case *traceK > 0:
		err = runTrace(*addr, *hsfqd, *policy, *traceK, *queue, *workers)
	case *flood != "":
		err = runFlood(*addr, *hsfqd, *policy, *tenants, *flood, *bound, *duration, *queue, *workers)
	case *tenants != "":
		err = runTenants(*addr, *hsfqd, *policy, *tenants, *duration, *c, *queue, *workers)
	default:
		err = run(*addr, *hsfqd, *policy, *n, *c, *scenarios, *queue, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsfqload:", err)
		os.Exit(1)
	}
}

// spawn starts hsfqd on a free port (when binary is non-empty) and waits
// for readiness; otherwise it validates addr. extra appends additional
// daemon flags. The returned stop func is nil when no daemon was spawned.
func spawn(addr, binary, policy string, queue, workers int, extra ...string) (string, func() error, error) {
	if binary == "" {
		if addr == "" {
			return "", nil, fmt.Errorf("need -addr or -hsfqd")
		}
		return addr, nil, nil
	}
	port, err := freePort()
	if err != nil {
		return "", nil, err
	}
	addr = fmt.Sprintf("http://127.0.0.1:%d", port)
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-queue", fmt.Sprint(queue),
		"-workers", fmt.Sprint(workers),
		"-verify-cache", "0.1",
	}
	if policy != "" {
		args = append(args, "-policy", policy)
	}
	args = append(args, extra...)
	daemon := exec.Command(binary, args...)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return "", nil, fmt.Errorf("spawning %s: %w", binary, err)
	}
	if err := waitReady(addr, 5*time.Second); err != nil {
		daemon.Process.Kill()
		return "", nil, err
	}
	stop := func() error {
		// Graceful drain: SIGTERM must flip readyz and exit 0.
		if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		exited := make(chan error, 1)
		go func() { exited <- daemon.Wait() }()
		select {
		case err := <-exited:
			if err != nil {
				return fmt.Errorf("daemon did not drain cleanly: %w", err)
			}
		case <-time.After(10 * time.Second):
			daemon.Process.Kill()
			return fmt.Errorf("daemon did not exit within 10s of SIGTERM")
		}
		fmt.Println("hsfqload: SIGTERM drain clean (exit 0)")
		return nil
	}
	return addr, stop, nil
}

func run(addr, hsfqd, policy string, n, c, scenarios, queue, workers int) error {
	addr, stop, err := spawn(addr, hsfqd, policy, queue, workers)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		if stop != nil {
			stop()
		}
		return err
	}
	stats, err := fire(addr, n, c, scenarios)
	if err != nil {
		return fail(err)
	}
	// The /metrics schema stays backward compatible: the pre-tenant
	// fields must still decode, whatever else was added.
	if err := checkLegacyMetrics(addr); err != nil {
		return fail(err)
	}
	fmt.Printf("hsfqload: %d requests over %d scenario(s): %d ok, %d shed-then-retried, 0 server errors, bodies byte-identical\n",
		n, scenarios, n, stats.shed)
	if stop != nil {
		return stop()
	}
	return nil
}

// scenario is a small mixed workload; the seed makes each index a
// distinct job (distinct content address) with an identical structure.
// The horizon and quantum set how much real work one request costs —
// engine cost scales with the number of simulated dispatch events
// (horizon/quantum), not with simulated time alone.
func scenario(i int, horizon, quantum string) string {
	return fmt.Sprintf(`{
	  "rate_mips": 100,
	  "horizon": %q,
	  "seed": %d,
	  "nodes": [
	    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": %q},
	    {"path": "/be", "weight": 1, "leaf": "rr"}
	  ],
	  "threads": [
	    {"name": "dec", "leaf": "/soft", "weight": 2, "program": {"kind": "mpeg", "loop": true}},
	    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
	  ]
	}`, horizon, i+1, quantum)
}

// The tenant and flood modes use a long horizon with a fine quantum so a
// single request costs real worker milliseconds: offered load then
// exceeds pool capacity and dispatch order is decided by the SFQ tree
// rather than by an idle queue. Classic mode keeps the cheap scenario
// (the hit/miss cache mix is the point there, not contention).
const (
	lightHorizon, lightQuantum = "100ms", "5ms"
	heavyHorizon, heavyQuantum = "150s", "1ms"
)

type loadStats struct {
	shed int
}

// fire issues n POSTs (round-robin over the scenarios) from c goroutines,
// retrying shed (429) requests, and checks the invariants.
func fire(addr string, n, c, scenarios int) (*loadStats, error) {
	var (
		mu     sync.Mutex
		bodies = map[int][]byte{}
		stats  loadStats
		errs   []error
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sc := i % scenarios
				body, _, shed, err := request(addr, "", scenario(sc, lightHorizon, lightQuantum))
				mu.Lock()
				stats.shed += shed
				if err != nil {
					errs = append(errs, fmt.Errorf("request %d: %w", i, err))
				} else if prev, ok := bodies[sc]; !ok {
					bodies[sc] = body
				} else if string(prev) != string(body) {
					errs = append(errs, fmt.Errorf("scenario %d: response bytes differ across requests", sc))
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	if len(bodies) != scenarios {
		return nil, fmt.Errorf("saw %d scenarios, want %d", len(bodies), scenarios)
	}
	return &stats, nil
}

// tenantSpec is one "name:weight" element of -tenants.
type tenantSpec struct {
	name   string
	weight float64
}

func parseTenants(s string) ([]tenantSpec, error) {
	var specs []tenantSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		w := 1.0
		if ok {
			var err error
			if w, err = strconv.ParseFloat(wstr, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("bad tenant weight %q", part)
			}
		}
		specs = append(specs, tenantSpec{name: name, weight: w})
	}
	if len(specs) < 2 {
		return nil, fmt.Errorf("-tenants needs at least two tenants, got %q", s)
	}
	return specs, nil
}

// runTenants saturates the daemon from every listed tenant at once
// (unique-seed misses, so every request is real work) and verifies that
// completed-request throughput is proportional to tenant weight within a
// fairness tolerance, and that a shared scenario's bytes are identical
// across tenants and header-less traffic.
//
// The verdict counts server-side completions between a warmup snapshot
// and a deadline snapshot of /metrics: SFQ's proportional-share guarantee
// holds while every tenant is backlogged, which is true in that window
// but not during the ramp-up or the post-deadline drain (the drain
// completes each tenant's residual backlog — equal constants that would
// dilute the measured ratio toward 1).
func runTenants(addr, hsfqd, policy, tenantsFlag string, duration time.Duration, c, queue, workers int) error {
	specs, err := parseTenants(tenantsFlag)
	if err != nil {
		return err
	}
	addr, stop, err := spawn(addr, hsfqd, policy, queue, workers)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		if stop != nil {
			stop()
		}
		return err
	}

	perTenant := c / len(specs)
	if perTenant < 8 {
		perTenant = 8
	}
	var mu sync.Mutex
	var errs []error
	warmup := duration / 4
	deadline := time.Now().Add(warmup + duration)
	var wg sync.WaitGroup
	for ti, spec := range specs {
		for g := 0; g < perTenant; g++ {
			wg.Add(1)
			go func(ti, g int, tenant string) {
				defer wg.Done()
				for seq := 0; time.Now().Before(deadline); seq++ {
					// Unique seeds per (tenant, goroutine, iteration):
					// all misses, all real scheduling work.
					seed := (ti+1)*10_000_000 + g*100_000 + seq
					_, _, _, err := request(addr, tenant, scenario(seed, heavyHorizon, heavyQuantum))
					if err != nil {
						mu.Lock()
						errs = append(errs, fmt.Errorf("tenant %s: %w", tenant, err))
						mu.Unlock()
						return
					}
				}
			}(ti, g, spec.name)
		}
	}
	time.Sleep(warmup)
	before, err := completedCounts(addr, names(specs))
	if err != nil {
		wg.Wait()
		return fail(fmt.Errorf("warmup snapshot: %w", err))
	}
	time.Sleep(time.Until(deadline))
	after, err := completedCounts(addr, names(specs))
	if err != nil {
		wg.Wait()
		return fail(fmt.Errorf("deadline snapshot: %w", err))
	}
	wg.Wait()
	if len(errs) > 0 {
		return fail(errs[0])
	}

	// Verdict: normalized throughput (completed/weight) must agree across
	// tenants within the fairness tolerance.
	const tolerance = 1.5
	counts := make([]int64, len(specs))
	minNorm, maxNorm := 0.0, 0.0
	for i, spec := range specs {
		counts[i] = after[spec.name] - before[spec.name]
		if counts[i] < 10 {
			return fail(fmt.Errorf("tenant %s completed only %d requests in %v; not enough signal", spec.name, counts[i], duration))
		}
		norm := float64(counts[i]) / spec.weight
		if i == 0 || norm < minNorm {
			minNorm = norm
		}
		if i == 0 || norm > maxNorm {
			maxNorm = norm
		}
		fmt.Printf("hsfqload: tenant %-8s weight %.1f: %4d completed (%.1f/weight)\n", spec.name, spec.weight, counts[i], norm)
	}
	if maxNorm > tolerance*minNorm {
		return fail(fmt.Errorf("weighted fairness violated: normalized throughput spread %.2f..%.2f exceeds %.1fx tolerance", minNorm, maxNorm, tolerance))
	}
	fmt.Printf("hsfqload: weighted throughput proportional to weight within %.1fx (spread %.2f..%.2f)\n", tolerance, minNorm, maxNorm)

	// A shared scenario must serve byte-identical responses to every
	// tenant and to header-less traffic: results are content-addressed,
	// tenant-agnostic.
	shared := scenario(424_242, heavyHorizon, heavyQuantum)
	var ref []byte
	for _, who := range append([]string{""}, names(specs)...) {
		body, _, _, err := request(addr, who, shared)
		if err != nil {
			return fail(fmt.Errorf("shared scenario as %q: %w", who, err))
		}
		if ref == nil {
			ref = body
		} else if string(ref) != string(body) {
			return fail(fmt.Errorf("shared scenario bytes differ for tenant %q", who))
		}
	}
	fmt.Println("hsfqload: shared scenario byte-identical across tenants and header-less traffic")
	if err := printTenantMetrics(addr, names(specs)); err != nil {
		return fail(err)
	}
	if stop != nil {
		return stop()
	}
	return nil
}

func names(specs []tenantSpec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

// runFlood measures the isolation invariant: a victim tenant's p99 under
// a sustained one-tenant flood must stay within bound x its p99 alone
// (floored, so microsecond baselines don't make the factor meaningless).
func runFlood(addr, hsfqd, policy, tenantsFlag, attacker string, bound float64, duration time.Duration, queue, workers int) error {
	specs, err := parseTenants(tenantsFlag)
	if err != nil {
		return err
	}
	victim := ""
	found := false
	for _, s := range specs {
		if s.name == attacker {
			found = true
		} else if victim == "" {
			victim = s.name
		}
	}
	if !found || victim == "" {
		return fmt.Errorf("-flood %q needs the attacker and at least one other tenant in -tenants %q", attacker, tenantsFlag)
	}
	addr, stop, err := spawn(addr, hsfqd, policy, queue, workers)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		if stop != nil {
			stop()
		}
		return err
	}

	// Phase A: the victim alone, sequential unique-seed requests.
	alone, err := victimPass(addr, victim, 1_000_000, duration)
	if err != nil {
		return fail(fmt.Errorf("baseline phase: %w", err))
	}
	p99Alone := p99(alone)

	// Phase B: the attacker floods from many goroutines while the victim
	// repeats the same sequential pattern.
	floodDone := make(chan struct{})
	var floodWG sync.WaitGroup
	for g := 0; g < 8*workers; g++ {
		floodWG.Add(1)
		go func(g int) {
			defer floodWG.Done()
			for seq := 0; ; seq++ {
				select {
				case <-floodDone:
					return
				default:
				}
				// A namespace disjoint from every victim pass: a seed
				// collision would coalesce the victim's request onto a
				// job queued deep in the attacker's own FIFO, charging
				// the attacker's queueing delay to the victim.
				seed := 20_000_000 + g*100_000 + seq
				// The attacker ignores shed responses: a flood does not
				// politely back off.
				postOnce(addr, attacker, scenario(seed, heavyHorizon, heavyQuantum))
			}
		}(g)
	}
	under, err := victimPass(addr, victim, 3_000_000, duration)
	close(floodDone)
	floodWG.Wait()
	if err != nil {
		return fail(fmt.Errorf("flood phase: %w", err))
	}
	p99Flood := p99(under)
	fmt.Printf("hsfqload: victim alone  n=%d p50=%v p99=%v\n", len(alone), p50(alone), p99Alone)
	fmt.Printf("hsfqload: victim flood  n=%d p50=%v p99=%v\n", len(under), p50(under), p99Flood)

	const floor = 25 * time.Millisecond
	limit := time.Duration(bound * float64(max(p99Alone, floor)))
	fmt.Printf("hsfqload: victim %q p99 alone %v, under %q flood %v (limit %v = %.1f x max(alone, %v))\n",
		victim, p99Alone, attacker, p99Flood, limit, bound, floor)
	if err := printTenantMetrics(addr, names(specs)); err != nil {
		return fail(err)
	}
	if p99Flood > limit {
		return fail(fmt.Errorf("isolation violated: victim p99 %v under flood exceeds %v", p99Flood, limit))
	}
	fmt.Println("hsfqload: one-tenant flood left the victim's p99 within bound — isolation holds")
	if stop != nil {
		return stop()
	}
	return nil
}

// victimPass issues sequential unique-seed requests as tenant for the
// given duration and returns each successful request's latency.
func victimPass(addr, tenant string, seedBase int, duration time.Duration) ([]time.Duration, error) {
	var lat []time.Duration
	deadline := time.Now().Add(duration)
	for seq := 0; time.Now().Before(deadline); seq++ {
		start := time.Now()
		_, _, _, err := request(addr, tenant, scenario(seedBase+seq, heavyHorizon, heavyQuantum))
		if err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(start))
	}
	if len(lat) < 10 {
		return nil, fmt.Errorf("victim completed only %d requests in %v; not enough signal", len(lat), duration)
	}
	return lat, nil
}

func p99(lat []time.Duration) time.Duration { return quantile(lat, 99) }
func p50(lat []time.Duration) time.Duration { return quantile(lat, 50) }

func quantile(lat []time.Duration, pct int) time.Duration {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) * pct) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// tenantMetricsDoc decodes just the tenant slice of /metrics.
type tenantMetricsDoc struct {
	Tenants map[string]struct {
		Weight     float64 `json:"weight"`
		Submitted  int64   `json:"submitted"`
		Completed  int64   `json:"completed"`
		Shed       int64   `json:"shed"`
		QueueDepth int     `json:"queue_depth"`
	} `json:"tenants"`
}

// completedCounts snapshots per-tenant completed counters from /metrics.
// Tenants the server has not seen yet read as zero.
func completedCounts(addr string, names []string) (map[string]int64, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc tenantMetricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metrics decode: %w", err)
	}
	out := make(map[string]int64, len(names))
	for _, name := range names {
		out[name] = doc.Tenants[name].Completed
	}
	return out, nil
}

func printTenantMetrics(addr string, names []string) error {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var doc tenantMetricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	for _, name := range names {
		tm, ok := doc.Tenants[name]
		if !ok {
			return fmt.Errorf("tenant %q missing from /metrics", name)
		}
		fmt.Printf("hsfqload: /metrics tenant %-8s weight %.1f submitted %d completed %d shed %d\n",
			name, tm.Weight, tm.Submitted, tm.Completed, tm.Shed)
	}
	return nil
}

// checkLegacyMetrics requires the pre-tenant /metrics fields to still
// decode with sane values — the backward-compatibility half of the
// serving contract.
func checkLegacyMetrics(addr string) error {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var doc struct {
		Workers       int                        `json:"workers"`
		QueueCapacity int                        `json:"queue_capacity"`
		TasksDone     int64                      `json:"tasks_done"`
		Cache         map[string]json.RawMessage `json:"cache"`
		Endpoints     map[string]json.RawMessage `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	if doc.Workers <= 0 || doc.QueueCapacity <= 0 || doc.TasksDone <= 0 ||
		doc.Cache == nil || doc.Endpoints["simulate"] == nil {
		return fmt.Errorf("legacy /metrics fields missing or zero: workers=%d cap=%d done=%d",
			doc.Workers, doc.QueueCapacity, doc.TasksDone)
	}
	return nil
}

// request POSTs one scenario as the given tenant ("" sends no tenant
// header), retrying 429s; any 5xx is an immediate failure. Returns the
// body, final status, and how many times the request was shed.
func request(addr, tenant, body string) ([]byte, int, int, error) {
	shed := 0
	for attempt := 0; attempt < 400; attempt++ {
		status, b, err := postOnce(addr, tenant, body)
		if err != nil {
			return nil, 0, shed, err
		}
		switch {
		case status == http.StatusOK:
			return b, status, shed, nil
		case status == http.StatusTooManyRequests:
			shed++
			time.Sleep(5 * time.Millisecond)
		case status >= 500:
			return nil, status, shed, fmt.Errorf("server error %d: %s", status, b)
		default:
			return nil, status, shed, fmt.Errorf("status %d: %s", status, b)
		}
	}
	return nil, 0, shed, fmt.Errorf("starved: still shed after 400 attempts")
}

// postOnce is a single non-retrying POST.
func postOnce(addr, tenant, body string) (int, []byte, error) {
	req, err := http.NewRequest("POST", addr+"/v1/simulate", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

func waitReady(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s not ready within %v", addr, timeout)
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}
