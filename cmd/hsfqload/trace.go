package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
)

// The trace leg exercises GET /v1/trace/{key}?follow=1 end to end: K
// concurrent follow streams of one live job, one of them deliberately
// slow. The invariants:
//
//   - every fast reader's stream is gap-free (no dropped marker) and
//     hashing its rows reproduces the digest in the stream's end event —
//     the same trace.Hasher digest the engine computed;
//   - the slow reader is told what it lost (dropped marker, counted)
//     instead of backpressuring the simulation or the fast readers;
//   - a SIGTERM with a stream open closes it cleanly (draining status or
//     end event, no transport error) and the daemon still exits 0.

// traceScenario is one long job: a fine quantum over a long horizon makes
// the stream hundreds of thousands of events, so readers attach while it
// is live and a throttled reader falls behind for real.
func traceScenario(seed int) string { return scenario(seed, "600s", "1ms") }

// jobKeyOf computes the job's content address client-side, so follow
// streams can start attaching before the submission returns.
func jobKeyOf(body string) (string, error) {
	cfg, err := simconfig.Parse(strings.NewReader(body))
	if err != nil {
		return "", err
	}
	return sweep.JobKey(cfg, cfg.Seed), nil
}

// streamResult is what one follow stream observed.
type streamResult struct {
	rows      int    // row events received
	digest    string // sha256 over received rows, hasher-style
	endDigest string // digest announced by the end event
	endRows   int
	dropped   uint64 // total events the server told us we lost
	draining  bool   // stream ended with a draining status
	sawEnd    bool
	err       error
}

// followStream attaches to the job's follow stream (retrying until the
// trace exists) and consumes it to the end. bufBytes > 0 is passed as
// ?buf=; slow throttles reads to force server-side drops.
func followStream(addr, key string, bufBytes int, slow bool) streamResult {
	url := fmt.Sprintf("%s/v1/trace/%s?follow=1", addr, key)
	if bufBytes > 0 {
		url += fmt.Sprintf("&buf=%d", bufBytes)
	}
	var resp *http.Response
	deadline := time.Now().Add(15 * time.Second)
	for {
		r, err := http.Get(url)
		if err != nil {
			return streamResult{err: err}
		}
		if r.StatusCode == http.StatusOK {
			resp = r
			break
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			return streamResult{err: fmt.Errorf("follow: status %d", r.StatusCode)}
		}
		if time.Now().After(deadline) {
			return streamResult{err: fmt.Errorf("trace for %s never appeared", key)}
		}
		time.Sleep(time.Millisecond)
	}
	defer resp.Body.Close()

	var body io.Reader = resp.Body
	if slow {
		body = &throttledReader{r: resp.Body, chunk: 4096, pause: 5 * time.Millisecond}
	}
	return consumeSSE(body)
}

// consumeSSE reads a follow stream to completion, hashing rows the way
// trace.Hasher does (row text + newline into SHA-256).
func consumeSSE(r io.Reader) streamResult {
	var res streamResult
	sum := sha256.New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			event = name
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // blank separators, keepalive comments
		}
		switch event {
		case "row":
			fmt.Fprintf(sum, "%s\n", data)
			res.rows++
		case "dropped":
			var d struct {
				Dropped uint64 `json:"dropped"`
			}
			if err := json.Unmarshal([]byte(data), &d); err == nil {
				res.dropped += d.Dropped
			}
		case "end":
			var e struct {
				Rows   int    `json:"rows"`
				Digest string `json:"digest"`
			}
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				res.err = err
				return res
			}
			res.sawEnd, res.endRows, res.endDigest = true, e.Rows, e.Digest
		case "status":
			if strings.Contains(data, "draining") {
				res.draining = true
			}
		}
	}
	res.err = sc.Err()
	res.digest = fmt.Sprintf("%x", sum.Sum(nil))
	return res
}

// throttledReader caps read throughput: small chunks with pauses, so the
// server's per-subscriber buffer overflows and drop accounting engages.
type throttledReader struct {
	r     io.Reader
	chunk int
	pause time.Duration
}

func (t *throttledReader) Read(p []byte) (int, error) {
	if len(p) > t.chunk {
		p = p[:t.chunk]
	}
	n, err := t.r.Read(p)
	time.Sleep(t.pause)
	return n, err
}

// runTrace is the -trace mode: stream one live job to K fast readers and
// one slow one, check gap-freedom and digest equality for the fast side
// and drop accounting for the slow side, then (when the daemon is ours)
// SIGTERM with a stream open and require a clean close and exit 0.
func runTrace(addr, hsfqd, policy string, streams, queue, workers int) error {
	addr, stop, err := spawn(addr, hsfqd, policy, queue, workers,
		"-trace-bytes", fmt.Sprint(64<<20))
	if err != nil {
		return err
	}
	fail := func(err error) error {
		if stop != nil {
			stop()
		}
		return err
	}

	job := traceScenario(31_337)
	key, err := jobKeyOf(job)
	if err != nil {
		return fail(err)
	}
	postErr := make(chan error, 1)
	go func() {
		_, _, _, err := request(addr, "", job)
		postErr <- err
	}()

	results := make([]streamResult, streams+1)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Fast readers ask for a buffer large enough to absorb the
			// whole run's frames even if delivery momentarily stalls:
			// lossless is the point of this side of the check.
			results[i] = followStream(addr, key, 64<<20, false)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Minimum server-side buffer plus a throttled client: guaranteed
		// to fall behind a stream this long.
		results[streams] = followStream(addr, key, 4096, true)
	}()
	wg.Wait()
	if err := <-postErr; err != nil {
		return fail(fmt.Errorf("traced job: %w", err))
	}

	for i := 0; i < streams; i++ {
		r := results[i]
		if r.err != nil {
			return fail(fmt.Errorf("fast stream %d: %w", i, r.err))
		}
		if !r.sawEnd || r.dropped != 0 {
			return fail(fmt.Errorf("fast stream %d: end=%v dropped=%d; want a complete gap-free stream", i, r.sawEnd, r.dropped))
		}
		if r.digest != r.endDigest || r.rows != r.endRows {
			return fail(fmt.Errorf("fast stream %d: hashed %d rows to %s, stream announced %d rows %s",
				i, r.rows, r.digest, r.endRows, r.endDigest))
		}
	}
	slowRes := results[streams]
	if slowRes.err != nil {
		return fail(fmt.Errorf("slow stream: %w", slowRes.err))
	}
	if !slowRes.sawEnd || slowRes.dropped == 0 {
		return fail(fmt.Errorf("slow stream: end=%v dropped=%d; want drop accounting, not backpressure", slowRes.sawEnd, slowRes.dropped))
	}
	if slowRes.rows+int(slowRes.dropped) != slowRes.endRows {
		return fail(fmt.Errorf("slow stream accounting: %d received + %d dropped != %d total",
			slowRes.rows, slowRes.dropped, slowRes.endRows))
	}
	fmt.Printf("hsfqload: %d fast stream(s) gap-free, digest %s over %d rows matches the engine\n",
		streams, results[0].digest, results[0].rows)
	fmt.Printf("hsfqload: slow stream received %d rows, told about %d dropped (accounting exact)\n",
		slowRes.rows, slowRes.dropped)

	if stop == nil {
		return nil
	}

	// Drain leg: a fresh job with a stream open when SIGTERM lands. The
	// stream must close cleanly — a draining status (stream cut mid-run)
	// or the end event (job won the race) — and the daemon must exit 0.
	job2 := traceScenario(31_338)
	key2, err := jobKeyOf(job2)
	if err != nil {
		return fail(err)
	}
	post2 := make(chan error, 1)
	go func() {
		_, _, _, err := request(addr, "", job2)
		post2 <- err
	}()
	ch := make(chan streamResult, 1)
	go func() { ch <- followStream(addr, key2, 0, false) }()
	// Wait until the trace is live (the follow above is attached or about
	// to be), then pull the plug.
	for deadline := time.Now().Add(15 * time.Second); ; {
		r, err := http.Get(addr + "/v1/trace/" + key2)
		if err == nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("drain leg: trace never appeared"))
		}
		time.Sleep(time.Millisecond)
	}
	stopErr := stop() // SIGTERM; waits for a clean exit 0
	res := <-ch
	<-post2 // the in-flight job finishes during drain; ignore its outcome
	if res.err != nil {
		return fail(fmt.Errorf("stream open across SIGTERM: %w", res.err))
	}
	if !res.draining && !res.sawEnd {
		return fail(fmt.Errorf("stream open across SIGTERM ended without draining status or end event"))
	}
	if stopErr != nil {
		return stopErr
	}
	fmt.Println("hsfqload: stream open across SIGTERM closed cleanly (draining protocol) and daemon exited 0")
	return nil
}
