// Command benchjson compares two `go test -bench` output files (as produced
// by `make bench`) and writes a JSON summary with per-benchmark medians and
// deltas. It understands the standard benchmark line format
//
//	BenchmarkName/sub-4   1000000   123.4 ns/op   16 B/op   2 allocs/op
//
// plus the custom whole-run throughput metric some benchmarks report:
//
//	BenchmarkSimThroughput/heap-4   10   1.2e7 ns/op   825.1 sim_ns/wall_ns
//
// and aggregates repeated counts of the same benchmark by median, which is
// what benchstat reports as the center.
//
// Schema (version 2): the report carries a schema_version field, machine
// metadata (go version, GOOS/GOARCH, GOMAXPROCS, CPU count) describing
// where benchjson ran — in the make bench workflow, the same machine that
// ran the benchmarks — and a "throughput" section listing the
// simulated-ns-per-wall-ns medians for every benchmark that reports one.
// Version-1 files (BENCH_PR1/PR2) have no schema_version, no machine, and
// no throughput section; their "benchmarks" entries read identically (see
// DESIGN.md's compatibility note).
//
// Usage:
//
//	benchjson -before old.txt -after new.txt -o BENCH_PR1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// schemaVersion gates encoding changes to the report layout. Bump it when
// renaming or re-interpreting fields, not when adding optional sections.
const schemaVersion = 2

type sample struct {
	nsPerOp  []float64
	bPerOp   []float64
	allocsOp []float64
	simPerNs []float64 // the sim_ns/wall_ns throughput metric
}

type result struct {
	Name           string  `json:"name"`
	BeforeNsOp     float64 `json:"before_ns_op"`
	AfterNsOp      float64 `json:"after_ns_op"`
	DeltaPct       float64 `json:"delta_pct"`
	BeforeBytesOp  float64 `json:"before_bytes_op"`
	AfterBytesOp   float64 `json:"after_bytes_op"`
	BeforeAllocsOp float64 `json:"before_allocs_op"`
	AfterAllocsOp  float64 `json:"after_allocs_op"`
}

// throughput is one benchmark's whole-run speed: how many nanoseconds of
// simulated time one nanosecond of wall clock buys. Bigger is faster.
type throughput struct {
	Name     string  `json:"name"`
	Before   float64 `json:"before_sim_ns_per_wall_ns"`
	After    float64 `json:"after_sim_ns_per_wall_ns"`
	DeltaPct float64 `json:"delta_pct"`
}

// machineInfo records where the comparison ran, so historical BENCH files
// are interpretable: a throughput regression on a different core count is
// not a regression.
type machineInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

type report struct {
	SchemaVersion int          `json:"schema_version"`
	Unit          string       `json:"unit"`
	Center        string       `json:"center"`
	Machine       machineInfo  `json:"machine"`
	Benchmarks    []result     `json:"benchmarks"`
	Throughput    []throughput `json:"throughput,omitempty"`
}

func main() {
	var (
		beforePath = flag.String("before", "", "benchmark output before the change")
		afterPath  = flag.String("after", "", "benchmark output after the change")
		outPath    = flag.String("o", "", "output JSON file (default stdout)")
	)
	flag.Parse()
	if *beforePath == "" || *afterPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -before and -after are required")
		os.Exit(2)
	}
	before, err := parseFile(*beforePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	after, err := parseFile(*afterPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	var names []string
	for name := range before {
		if _, ok := after[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rep := report{
		SchemaVersion: schemaVersion,
		Unit:          "ns/op",
		Center:        "median",
		Machine: machineInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
	}
	for _, name := range names {
		b, a := before[name], after[name]
		bn, an := median(b.nsPerOp), median(a.nsPerOp)
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:           name,
			BeforeNsOp:     bn,
			AfterNsOp:      an,
			DeltaPct:       round2((an - bn) / bn * 100),
			BeforeBytesOp:  median(b.bPerOp),
			AfterBytesOp:   median(a.bPerOp),
			BeforeAllocsOp: median(b.allocsOp),
			AfterAllocsOp:  median(a.allocsOp),
		})
		if len(b.simPerNs) > 0 || len(a.simPerNs) > 0 {
			bt, at := median(b.simPerNs), median(a.simPerNs)
			tp := throughput{Name: name, Before: bt, After: at}
			if bt != 0 {
				tp.DeltaPct = round2((at - bt) / bt * 100)
			}
			rep.Throughput = append(rep.Throughput, tp)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]*sample)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Keep the name verbatim (including any -GOMAXPROCS suffix), as
		// benchstat does; stripping would collide sub-benchmarks whose own
		// names end in a number.
		name := fields[0]
		s := out[name]
		if s == nil {
			s = &sample{}
			out[name] = s
		}
		// Fields after the iteration count come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = append(s.nsPerOp, v)
			case "B/op":
				s.bPerOp = append(s.bPerOp, v)
			case "allocs/op":
				s.allocsOp = append(s.allocsOp, v)
			case "sim_ns/wall_ns":
				s.simPerNs = append(s.simPerNs, v)
			}
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func round2(x float64) float64 {
	return float64(int64(x*100+copySign(0.5, x))) / 100
}

func copySign(mag, sign float64) float64 {
	if sign < 0 {
		return -mag
	}
	return mag
}
