package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected into a string. The pipe is
// drained concurrently so large outputs cannot deadlock the writer.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outCh
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

func TestRunDemoConfig(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "events.csv")
	dotPath := filepath.Join(dir, "structure.dot")
	out := capture(t, func() error { return run("", tracePath, dotPath, 0, false) })

	for _, want := range []string{
		"scheduling structure:",
		"best-effort",
		"sensor",
		"missed deadlines",
		"frames decoded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if b, err := os.ReadFile(tracePath); err != nil || !strings.Contains(string(b), "dispatch") {
		t.Errorf("trace file: %v", err)
	}
	if b, err := os.ReadFile(dotPath); err != nil || !strings.Contains(string(b), "digraph") {
		t.Errorf("dot file: %v", err)
	}
}

func TestRunWithConfigFileAndGantt(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(cfg, []byte(`{
	  "horizon": "1s",
	  "nodes": [{"path": "/a", "leaf": "sfq"}],
	  "threads": [{"name": "x", "leaf": "/a", "program": {"kind": "loop"}}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error { return run(cfg, "", "", 7, true) })
	if !strings.Contains(out, "first second of the schedule:") {
		t.Error("gantt section missing")
	}
	if !strings.Contains(out, "x") {
		t.Error("thread row missing")
	}
}

func TestRunMissingConfig(t *testing.T) {
	if err := run("/no/such/config.json", "", "", 0, false); err == nil {
		t.Error("missing config accepted")
	}
}
