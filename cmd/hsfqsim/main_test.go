package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected into a string. The pipe is
// drained concurrently so large outputs cannot deadlock the writer.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outCh
	r.Close()
	if runErr != nil {
		t.Fatal(runErr)
	}
	return out
}

func TestRunDemoConfig(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "events.csv")
	dotPath := filepath.Join(dir, "structure.dot")
	out := capture(t, func() error {
		return run(runOptions{tracePath: tracePath, dotPath: dotPath})
	})

	for _, want := range []string{
		"scheduling structure:",
		"best-effort",
		"sensor",
		"missed deadlines",
		"frames decoded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if b, err := os.ReadFile(tracePath); err != nil || !strings.Contains(string(b), "dispatch") {
		t.Errorf("trace file: %v", err)
	}
	if b, err := os.ReadFile(dotPath); err != nil || !strings.Contains(string(b), "digraph") {
		t.Errorf("dot file: %v", err)
	}
}

func TestRunWithConfigFileAndGantt(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(cfg, []byte(`{
	  "horizon": "1s",
	  "nodes": [{"path": "/a", "leaf": "sfq"}],
	  "threads": [{"name": "x", "leaf": "/a", "program": {"kind": "loop"}}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error {
		return run(runOptions{configPath: cfg, seed: 7, gantt: true})
	})
	if !strings.Contains(out, "first second of the schedule:") {
		t.Error("gantt section missing")
	}
	if !strings.Contains(out, "x") {
		t.Error("thread row missing")
	}
}

func TestRunMissingConfig(t *testing.T) {
	if err := run(runOptions{configPath: "/no/such/config.json"}); err == nil {
		t.Error("missing config accepted")
	}
}

const ckptTestConfig = `{
  "horizon": "1s",
  "seed": 11,
  "nodes": [
    {"path": "/rt", "weight": 2, "leaf": "edf", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "sfq", "quantum": "10ms"}
  ],
  "threads": [
    {"name": "cam", "leaf": "/rt", "program": {"kind": "periodic", "period": "40ms", "cost": "6ms"}},
    {"name": "job", "leaf": "/be", "program": {"kind": "loop"}}
  ],
  "interrupts": [{"kind": "poisson", "rate_per_sec": 80, "service": "120us"}]
}`

// TestRunCheckpointResume drives the full CLI round trip: a checkpointing
// run leaves a snapshot behind, a -resume run finishes from it, and the
// resumed run's trace CSV is byte-identical to the uninterrupted one.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(cfg, []byte(ckptTestConfig), 0o644); err != nil {
		t.Fatal(err)
	}

	pristine := filepath.Join(dir, "pristine.csv")
	capture(t, func() error { return run(runOptions{configPath: cfg, tracePath: pristine}) })

	ckpt := filepath.Join(dir, "run.ckpt")
	capture(t, func() error {
		return run(runOptions{
			configPath: cfg,
			tracePath:  filepath.Join(dir, "ignored.csv"),
			ckptEvery:  300 * 1e6, // 300ms simulated
			ckptOut:    ckpt,
		})
	})
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	resumed := filepath.Join(dir, "resumed.csv")
	out := capture(t, func() error {
		return run(runOptions{resumePath: ckpt, tracePath: resumed})
	})
	if !strings.Contains(out, "scheduling structure:") {
		t.Error("resumed run printed no report")
	}

	want, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("resumed trace differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestRunFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(cfg, []byte(ckptTestConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  runOptions
	}{
		{"resume+config", runOptions{resumePath: "x.ckpt", configPath: cfg}},
		{"resume+seed", runOptions{resumePath: "x.ckpt", seed: 3}},
		{"every without out", runOptions{configPath: cfg, ckptEvery: 1e6}},
		{"out without every", runOptions{configPath: cfg, ckptOut: filepath.Join(dir, "a.ckpt")}},
		{"resume missing file", runOptions{resumePath: filepath.Join(dir, "nope.ckpt")}},
	}
	for _, tc := range cases {
		if err := run(tc.opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRunResumeWithoutTraceSection checks the error when a traceless
// checkpoint is resumed with -trace: the past events cannot be recreated.
func TestRunResumeWithoutTraceSection(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sim.json")
	if err := os.WriteFile(cfg, []byte(ckptTestConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "run.ckpt")
	capture(t, func() error {
		return run(runOptions{configPath: cfg, ckptEvery: 400 * 1e6, ckptOut: ckpt})
	})
	err := run(runOptions{resumePath: ckpt, tracePath: filepath.Join(dir, "t.csv")})
	if err == nil || !strings.Contains(err.Error(), "no trace section") {
		t.Errorf("want trace-section error, got %v", err)
	}
	// Without -trace the same checkpoint resumes fine.
	capture(t, func() error { return run(runOptions{resumePath: ckpt}) })
}
