// Command hsfqsim runs a hierarchical scheduling simulation described by a
// JSON configuration and reports per-node and per-thread allocation.
//
// Usage:
//
//	hsfqsim -config sim.json
//	hsfqsim -config sim.json -trace events.csv -dot structure.dot
//	hsfqsim -config sim.json -cpuprofile cpu.pprof -memprofile mem.pprof
//
// With no -config it runs a built-in demonstration: the paper's Fig. 2
// structure under mixed load.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

const demoConfig = `{
  "rate_mips": 100,
  "horizon": "10s",
  "seed": 42,
  "nodes": [
    {"path": "/hard-real-time", "weight": 1, "leaf": "edf", "quantum": "10ms"},
    {"path": "/soft-real-time", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
    {"path": "/best-effort", "weight": 6},
    {"path": "/best-effort/user1", "weight": 1, "leaf": "sfq", "quantum": "10ms"},
    {"path": "/best-effort/user2", "weight": 1, "leaf": "svr4"}
  ],
  "threads": [
    {"name": "sensor", "leaf": "/hard-real-time",
     "program": {"kind": "periodic", "period": "60ms", "cost": "5ms"}},
    {"name": "decoder", "leaf": "/soft-real-time", "weight": 2,
     "program": {"kind": "mpeg", "loop": true}},
    {"name": "make", "leaf": "/best-effort/user1",
     "program": {"kind": "loop"}},
    {"name": "editor", "leaf": "/best-effort/user2",
     "program": {"kind": "interactive"}},
    {"name": "batch", "leaf": "/best-effort/user2",
     "program": {"kind": "loop"}}
  ],
  "interrupts": [
    {"kind": "periodic", "period": "10ms", "service": "100us"}
  ]
}`

func main() {
	var (
		configPath = flag.String("config", "", "JSON simulation config (empty: built-in demo)")
		tracePath  = flag.String("trace", "", "write a CSV scheduling trace to this file")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart of the first second")
		dotPath    = flag.String("dot", "", "write the scheduling structure in DOT format")
		seed       = flag.Uint64("seed", 0, "override the config's random seed")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hsfqsim [flags]\n\nleaf kinds (config \"leaf\" field): %s\n\nflags:\n",
			strings.Join(sched.Names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hsfqsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hsfqsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(*configPath, *tracePath, *dotPath, *seed, *gantt)
	if *memProf != "" {
		if merr := writeMemProfile(*memProf); err == nil {
			err = merr
		}
	}
	if err != nil {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		fmt.Fprintln(os.Stderr, "hsfqsim:", err)
		os.Exit(1)
	}
}

// writeMemProfile snapshots the allocation profile after a final GC so the
// numbers reflect live and cumulative allocations of the run.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(configPath, tracePath, dotPath string, seed uint64, gantt bool) error {
	var cfg simconfig.Config
	var err error
	if configPath == "" {
		fmt.Println("(no -config given: running the built-in Fig. 2 demo)")
		cfg, err = simconfig.Parse(strings.NewReader(demoConfig))
	} else {
		f, ferr := os.Open(configPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		cfg, err = simconfig.Parse(f)
	}
	if err != nil {
		return err
	}

	s, err := simconfig.Build(cfg, simconfig.BuildOptions{Seed: seed})
	if err != nil {
		return err
	}

	var rec *trace.Recorder
	if tracePath != "" || gantt {
		rec = trace.NewRecorder(0)
		s.Machine.Listen(rec)
	}

	s.Run()

	fmt.Println("scheduling structure:")
	fmt.Print(s.Structure.String())
	fmt.Println()

	tbl := metrics.NewTable("thread", "leaf", "weight", "work", "share", "segments", "waited", "state")
	total := float64(s.Machine.Stats().Work)
	for _, th := range s.Threads {
		leaf := s.Structure.LeafOf(th)
		tbl.AddRow(th.Name, s.Structure.PathOf(leaf.ID()), th.Weight,
			int64(th.Done), float64(th.Done)/total, th.Segments, th.Waited.String(), th.State.String())
	}
	fmt.Print(tbl.String())

	st := s.Machine.Stats()
	fmt.Printf("\nmachine: %v of work, %d dispatches, %d preemptions, %d interrupts (%v stolen), idle %v\n",
		st.Work, st.Dispatches, st.Preemptions, st.Interrupts, st.Stolen, st.Idle)

	for name, p := range s.Periodics {
		fmt.Printf("periodic %q: %d rounds, %d missed deadlines, min slack %v\n",
			name, len(p.Slack), p.MissedDeadlines(), p.MinSlack())
	}
	for name, d := range s.Decoders {
		fmt.Printf("decoder %q: %d frames decoded\n", name, d.FramesDecoded(s.Config.Horizon.Time()))
	}

	if gantt {
		fmt.Println("\nfirst second of the schedule:")
		if err := trace.Gantt(os.Stdout, rec.Spans(), 0, simSecond(), 100); err != nil {
			return err
		}
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := s.Structure.WriteDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotPath)
	}
	if rec != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", tracePath, len(rec.Events()))
	}
	return nil
}

func simSecond() sim.Time { return sim.Second }
