// Command hsfqsim runs a hierarchical scheduling simulation described by a
// JSON configuration and reports per-node and per-thread allocation.
//
// Usage:
//
//	hsfqsim -config sim.json
//	hsfqsim -config sim.json -trace events.csv -dot structure.dot
//	hsfqsim -config sim.json -cpuprofile cpu.pprof -memprofile mem.pprof
//	hsfqsim -config sim.json -checkpoint-every 1s -checkpoint-out run.ckpt
//	hsfqsim -resume run.ckpt -trace events.csv
//
// With no -config it runs a built-in demonstration: the paper's Fig. 2
// structure under mixed load.
//
// Checkpointing: -checkpoint-every periodically snapshots the full
// simulation state to -checkpoint-out (atomically, so a kill mid-write
// leaves the previous snapshot intact). -resume continues a run from such
// a snapshot; the completed run's outputs — the trace CSV in particular —
// are byte-identical to an uninterrupted run of the original config.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"hsfq/internal/checkpoint"
	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sim"
	"hsfq/internal/simconfig"
	"hsfq/internal/trace"
)

const demoConfig = `{
  "rate_mips": 100,
  "horizon": "10s",
  "seed": 42,
  "nodes": [
    {"path": "/hard-real-time", "weight": 1, "leaf": "edf", "quantum": "10ms"},
    {"path": "/soft-real-time", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
    {"path": "/best-effort", "weight": 6},
    {"path": "/best-effort/user1", "weight": 1, "leaf": "sfq", "quantum": "10ms"},
    {"path": "/best-effort/user2", "weight": 1, "leaf": "svr4"}
  ],
  "threads": [
    {"name": "sensor", "leaf": "/hard-real-time",
     "program": {"kind": "periodic", "period": "60ms", "cost": "5ms"}},
    {"name": "decoder", "leaf": "/soft-real-time", "weight": 2,
     "program": {"kind": "mpeg", "loop": true}},
    {"name": "make", "leaf": "/best-effort/user1",
     "program": {"kind": "loop"}},
    {"name": "editor", "leaf": "/best-effort/user2",
     "program": {"kind": "interactive"}},
    {"name": "batch", "leaf": "/best-effort/user2",
     "program": {"kind": "loop"}}
  ],
  "interrupts": [
    {"kind": "periodic", "period": "10ms", "service": "100us"}
  ]
}`

func main() {
	var (
		configPath = flag.String("config", "", "JSON simulation config (empty: built-in demo)")
		tracePath  = flag.String("trace", "", "write a CSV scheduling trace to this file")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart of the first second")
		ganttDepth = flag.Bool("gantt-depth", false, "print the Gantt chart grouped by scheduling-tree depth (one lane per level)")
		dotPath    = flag.String("dot", "", "write the scheduling structure in DOT format")
		seed       = flag.Uint64("seed", 0, "override the config's random seed")
		cores      = flag.Int("cores", 0, "override the config's core count (0: keep the config's)")
		policy     = flag.String("policy", "", "override the config's multiprocessor policy: partitioned, global, or steal")
		queue      = flag.String("queue", "", "override the config's event queue: "+strings.Join(sim.EventQueueNames(), " or ")+" (output is identical either way; the queue only changes speed)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		ckptEvery  = flag.Duration("checkpoint-every", 0, "snapshot the simulation state at this simulated-time cadence (requires -checkpoint-out)")
		ckptOut    = flag.String("checkpoint-out", "", "checkpoint file, atomically overwritten at each snapshot")
		resumePath = flag.String("resume", "", "resume from a checkpoint file instead of building from a config")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hsfqsim [flags]\n\nleaf kinds (config \"leaf\" field): %s\n\nflags:\n",
			strings.Join(sched.Names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hsfqsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hsfqsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(runOptions{
		configPath: *configPath,
		tracePath:  *tracePath,
		dotPath:    *dotPath,
		seed:       *seed,
		cores:      *cores,
		policy:     *policy,
		queue:      *queue,
		gantt:      *gantt,
		ganttDepth: *ganttDepth,
		ckptEvery:  sim.Time(ckptEvery.Nanoseconds()),
		ckptOut:    *ckptOut,
		resumePath: *resumePath,
	})
	if *memProf != "" {
		if merr := writeMemProfile(*memProf); err == nil {
			err = merr
		}
	}
	if err != nil {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		fmt.Fprintln(os.Stderr, "hsfqsim:", err)
		os.Exit(1)
	}
}

// writeMemProfile snapshots the allocation profile after a final GC so the
// numbers reflect live and cumulative allocations of the run.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type runOptions struct {
	configPath string
	tracePath  string
	dotPath    string
	seed       uint64
	cores      int
	policy     string
	queue      string
	gantt      bool
	ganttDepth bool
	ckptEvery  sim.Time
	ckptOut    string
	resumePath string
}

func run(o runOptions) error {
	var s *simconfig.Simulation
	var rec *trace.Recorder
	wantTrace := o.tracePath != "" || o.gantt || o.ganttDepth

	if o.resumePath != "" {
		if o.configPath != "" || o.seed != 0 || o.cores != 0 || o.policy != "" {
			return fmt.Errorf("-resume carries its own config and seed; drop -config/-seed/-cores/-policy")
		}
		data, err := os.ReadFile(o.resumePath)
		if err != nil {
			return err
		}
		info, err := checkpoint.Peek(data)
		if err != nil {
			return err
		}
		// -queue stays legal with -resume: snapshots are queue-agnostic,
		// so switching engines on resume cannot change the output.
		opt := checkpoint.Options{EventQueue: o.queue}
		if wantTrace {
			if !info.HasTrace {
				return fmt.Errorf("%s has no trace section; rerun the checkpointing side with -trace", o.resumePath)
			}
			rec = trace.NewRecorder(0)
			opt.Recorder = rec
		}
		s, err = checkpoint.Restore(data, opt)
		if err != nil {
			return err
		}
		if rec != nil {
			s.Machine.Listen(rec)
		}
		fmt.Fprintf(os.Stderr, "hsfqsim: resumed at %v of %v (seed %d)\n", info.At, info.Horizon, info.Seed)
	} else {
		var cfg simconfig.Config
		var err error
		if o.configPath == "" {
			fmt.Println("(no -config given: running the built-in Fig. 2 demo)")
			cfg, err = simconfig.Parse(strings.NewReader(demoConfig))
		} else {
			f, ferr := os.Open(o.configPath)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			cfg, err = simconfig.Parse(f)
		}
		if err != nil {
			return err
		}
		if o.cores != 0 {
			cfg.Cores = o.cores
		}
		if o.policy != "" {
			cfg.Policy = o.policy
		}
		if o.queue != "" {
			cfg.EventQueue = o.queue
		}
		if s, err = simconfig.Build(cfg, simconfig.BuildOptions{Seed: o.seed}); err != nil {
			return err
		}
		if wantTrace {
			rec = trace.NewRecorder(0)
			s.Machine.Listen(rec)
		}
	}

	if o.ckptEvery > 0 {
		if o.ckptOut == "" {
			return fmt.Errorf("-checkpoint-every needs -checkpoint-out")
		}
		armCheckpoints(s, rec, o.ckptEvery, o.ckptOut)
	} else if o.ckptOut != "" {
		return fmt.Errorf("-checkpoint-out needs -checkpoint-every")
	}

	s.Run()

	nCores := s.Machine.NumCores()
	if len(s.Structures) == 1 {
		fmt.Println("scheduling structure:")
		fmt.Print(s.Structure.String())
	} else {
		for c, st := range s.Structures {
			fmt.Printf("scheduling structure (core %d):\n", c)
			fmt.Print(st.String())
		}
	}
	fmt.Println()

	cols := []string{"thread", "leaf", "weight", "work", "share", "segments", "waited", "state"}
	if nCores > 1 {
		cols = append(cols, "home")
	}
	tbl := metrics.NewTable(cols...)
	total := float64(s.Machine.Stats().Work)
	for _, th := range s.Threads {
		st := s.StructureOf(th)
		row := []any{th.Name, st.PathOf(st.LeafOf(th).ID()), th.Weight,
			int64(th.Done), float64(th.Done) / total, th.Segments, th.Waited.String(), th.State.String()}
		if nCores > 1 {
			row = append(row, s.Machine.HomeCore(th))
		}
		tbl.AddRow(row...)
	}
	fmt.Print(tbl.String())

	st := s.Machine.Stats()
	fmt.Printf("\nmachine: %v of work, %d dispatches, %d preemptions, %d interrupts (%v stolen), idle %v\n",
		st.Work, st.Dispatches, st.Preemptions, st.Interrupts, st.Stolen, st.Idle)
	if nCores > 1 {
		fmt.Printf("policy %s, %d migrations\n", s.Machine.Policy(), st.Migrations)
		for c := 0; c < nCores; c++ {
			cs := s.Machine.CoreStats(c)
			fmt.Printf("core %d: %v of work, %d dispatches, %d preemptions, %d migrations, idle %v\n",
				c, cs.Work, cs.Dispatches, cs.Preemptions, cs.Migrations, cs.Idle)
		}
	}

	for name, p := range s.Periodics {
		fmt.Printf("periodic %q: %d rounds, %d missed deadlines, min slack %v\n",
			name, len(p.Slack), p.MissedDeadlines(), p.MinSlack())
	}
	for name, d := range s.Decoders {
		fmt.Printf("decoder %q: %d frames decoded\n", name, d.FramesDecoded(s.Config.Horizon.Time()))
	}

	if o.gantt {
		fmt.Println("\nfirst second of the schedule:")
		if err := trace.Gantt(os.Stdout, rec.Spans(), 0, simSecond(), 100); err != nil {
			return err
		}
	}
	if o.ganttDepth {
		fmt.Println("\nfirst second of the schedule, by tree depth:")
		if err := trace.GanttByDepth(os.Stdout, rec.Spans(), s.ThreadMetas(), 0, simSecond(), 100); err != nil {
			return err
		}
	}
	if o.dotPath != "" {
		f, err := os.Create(o.dotPath)
		if err != nil {
			return err
		}
		if err := s.Structure.WriteDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.dotPath)
	}
	if rec != nil && o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", o.tracePath, len(rec.Events()))
	}
	return nil
}

// armCheckpoints schedules a self-rescheduling engine event that snapshots
// the full simulation state to path every `every` of simulated time. The
// write is atomic (temp file + rename in the same directory), so a kill
// mid-write leaves the previous snapshot intact. Snapshot failures only
// warn: a checkpoint is a convenience, never worth aborting the run for.
//
// The extra engine events consume sequence numbers but do not reorder any
// same-instant simulation events, so the run's trace stays byte-identical
// to one without checkpointing.
func armCheckpoints(s *simconfig.Simulation, rec *trace.Recorder, every sim.Time, path string) {
	var tick func()
	tick = func() {
		if err := writeCheckpoint(s, rec, path); err != nil {
			fmt.Fprintf(os.Stderr, "hsfqsim: checkpoint at %v: %v\n", s.Engine.Now(), err)
		}
		s.Engine.After(every, tick)
	}
	s.Engine.After(every, tick)
}

// writeCheckpoint atomically replaces path with the current snapshot.
func writeCheckpoint(s *simconfig.Simulation, rec *trace.Recorder, path string) error {
	data, err := checkpoint.Save(s, checkpoint.Options{Recorder: rec})
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hsfqsim-ckpt-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func simSecond() sim.Time { return sim.Second }
