// Command hsfqmesh runs a parameter sweep across a mesh of hsfqd
// backends: the spec's job grid is sharded over the configured daemons
// with bounded per-backend windows, failed or timed-out claims retried
// with exponential backoff (preferring a different backend), stragglers
// optionally hedged, and a sampled fraction of remote results re-executed
// locally and digest-compared. A backend caught returning wrong bytes for
// a deterministic job is quarantined for the rest of the run and the
// process exits 3 (the same code hsfqsweep -verify uses for determinism
// violations), even though the output itself is repaired locally.
//
// Usage:
//
//	hsfqmesh -spec sweep.json -backends http://a:8377,http://b:8377
//	hsfqmesh -spec sweep.json -backends http://a:8377 -hedge-after 2s -verify 0.2
//	hsfqmesh -spec sweep.json                  # no backends: serial local run
//
// The JSONL on stdout (or -o) is byte-identical to `hsfqsweep -spec
// sweep.json` regardless of backend count, failures, retries, or hedging:
// job identity lives in the locally expanded grid, execution is
// deterministic, and every accepted remote result is structurally checked
// against its pre-computed content address.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hsfq/internal/dispatch"
	"hsfq/internal/metrics"
	"hsfq/internal/sweep"
)

// Exit codes: 1 = job failures, exitMismatch = a backend returned wrong
// bytes for a deterministic job (matches hsfqsweep's -verify convention).
const exitMismatch = 3

func main() {
	var (
		specPath    = flag.String("spec", "", "JSON sweep specification (required)")
		backends    = flag.String("backends", "", "comma-separated hsfqd base URLs (empty = run everything locally)")
		outPath     = flag.String("o", "-", `JSON-lines results: "-" for stdout, "" for none, else a file`)
		summary     = flag.Bool("summary", true, "print the per-point aggregate table")
		metricNames = flag.String("metrics", "work_total", "comma-separated metrics to summarize")
		stats       = flag.Bool("stats", true, "print per-backend dispatch counters to stderr")
		window      = flag.Int("window", 4, "concurrent claims per backend")
		batch       = flag.Int("batch", 4, "jobs per claim")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-job attempt deadline")
		retries     = flag.Int("retries", 3, "remote attempts per job before it falls back to local execution")
		hedgeAfter  = flag.Duration("hedge-after", 0, "re-dispatch a straggling job after this long (0 = off)")
		verifyFrac  = flag.Float64("verify", 0.1, "fraction of remote results re-executed locally and digest-compared (0..1)")
	)
	flag.Usage = func() {
		fmt.Fprint(flag.CommandLine.Output(), `usage: hsfqmesh -spec sweep.json -backends http://host:8377,... [flags]

Output is byte-identical to a serial hsfqsweep run of the same spec.
Exit status: 0 ok, 1 job failures, 3 backend returned corrupt results.

flags:
`)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	opt := dispatch.Options{
		Window:         *window,
		Batch:          *batch,
		Timeout:        *timeout,
		Retries:        *retries,
		HedgeAfter:     *hedgeAfter,
		VerifyFraction: *verifyFrac,
		Logf:           func(f string, a ...any) { fmt.Fprintf(os.Stderr, "hsfqmesh: "+f+"\n", a...) },
	}
	code, err := run(ctx, *specPath, *backends, opt, *outPath, *summary, *metricNames, *stats, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsfqmesh:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// run is the testable body of main: expand, dispatch, report.
func run(ctx context.Context, specPath, backendList string, opt dispatch.Options,
	outPath string, summary bool, metricNames string, stats bool, stdout, stderr io.Writer) (int, error) {
	f, err := os.Open(specPath)
	if err != nil {
		return 1, err
	}
	spec, err := sweep.ParseSpec(f)
	f.Close()
	if err != nil {
		return 1, err
	}
	jobs, err := sweep.Expand(spec)
	if err != nil {
		return 1, err
	}

	var remotes []dispatch.Backend
	for _, b := range strings.Split(backendList, ",") {
		if b = strings.TrimSpace(b); b == "" {
			continue
		}
		hb, err := dispatch.NewHTTP(b)
		if err != nil {
			return 2, err
		}
		remotes = append(remotes, hb)
	}

	var stream io.Writer
	switch outPath {
	case "":
	case "-":
		stream = stdout
	default:
		out, err := os.Create(outPath)
		if err != nil {
			return 1, err
		}
		defer out.Close()
		stream = out
	}
	var sink sweep.Sink
	if stream != nil {
		sink = sweep.WriterSink{W: stream}
	}

	c := &dispatch.Coordinator{Remotes: remotes, Local: dispatch.Local{}, Opt: opt}
	res, err := c.Run(ctx, jobs, sink)
	if err != nil {
		return 1, err
	}

	rep := sweep.NewReport(spec.Name, len(remotes)+1, res.Results)
	if stats {
		for _, b := range res.Backends {
			kind := "backend"
			if b.Local {
				kind = "local"
			}
			fmt.Fprintf(stderr, "hsfqmesh: %s %s: %s\n", kind, b.Name, b.Line)
		}
	}
	if summary {
		printSummary(stdout, rep, len(remotes), strings.Split(metricNames, ","))
	}

	if res.Mismatches > 0 {
		return exitMismatch, fmt.Errorf("%d remote result(s) failed digest verification (backend quarantined; affected jobs re-run locally)", res.Mismatches)
	}
	if rep.Failed > 0 {
		return 1, fmt.Errorf("%d of %d job(s) failed (first: %s)", rep.Failed, rep.Jobs, firstError(res.Results))
	}
	return 0, nil
}

func firstError(results []sweep.JobResult) string {
	for _, r := range results {
		if r.Error != "" {
			return r.Error
		}
	}
	return ""
}

func printSummary(w io.Writer, rep *sweep.Report, remotes int, names []string) {
	fmt.Fprintf(w, "sweep %q: %d job(s) over %d backend(s) + local, %d grid point(s)\n",
		rep.Name, rep.Jobs, remotes, len(rep.Aggregates))
	tbl := metrics.NewTable("point", "seeds", "metric", "mean", "p50", "p99", "min", "max")
	for _, agg := range rep.Aggregates {
		for _, name := range names {
			name = strings.TrimSpace(name)
			s, ok := agg.Metrics[name]
			if !ok {
				continue
			}
			tbl.AddRow(pointLabel(agg.Point), agg.Seeds, name, s.Mean, s.P50, s.P99, s.Min, s.Max)
		}
	}
	fmt.Fprint(w, tbl.String())
}

// pointLabel renders a grid point compactly: "leaf@/soft=sfq quantum@/soft=5ms".
func pointLabel(point map[string]string) string {
	if len(point) == 0 {
		return "(base)"
	}
	keys := make([]string, 0, len(point))
	for k := range point {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + point[k]
	}
	return strings.Join(parts, " ")
}
