package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hsfq/internal/dispatch"
	"hsfq/internal/server"
	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
	"hsfq/internal/testutil"
)

const testSpec = `{
  "name": "mesh-test",
  "seeds": 2,
  "base": {
    "rate_mips": 100,
    "horizon": "20ms",
    "seed": 7,
    "nodes": [
      {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
      {"path": "/be", "weight": 1, "leaf": "sfq"}
    ],
    "threads": [
      {"name": "a", "leaf": "/soft", "weight": 2, "program": {"kind": "loop"}},
      {"name": "b", "leaf": "/be", "program": {"kind": "loop"}}
    ]
  },
  "axes": [
    {"param": "quantum", "target": "/soft", "values": ["5ms", "20ms"]}
  ]
}`

func writeSpec(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(p, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// serialJSONL is the reference: the spec run by the in-process engine.
func serialJSONL(t *testing.T) []byte {
	t.Helper()
	spec, err := sweep.ParseSpec(strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sweep.Run(spec, sweep.Options{Workers: 1, Stream: &buf}); err != nil {
		t.Fatalf("serial reference run: %v", err)
	}
	return buf.Bytes()
}

func testOpts() dispatch.Options {
	return dispatch.Options{
		Batch: 2, Timeout: time.Minute, Retries: 2,
		Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		ProbeInterval: 5 * time.Millisecond,
	}
}

func TestRunLocalOnly(t *testing.T) {
	want := serialJSONL(t)
	var stdout, stderr bytes.Buffer
	code, err := run(context.Background(), writeSpec(t), "", testOpts(),
		"-", false, "work_total", false, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v, stderr %s", code, err, stderr.Bytes())
	}
	if d := testutil.DiffBytes(stdout.Bytes(), want); d != "" {
		t.Errorf("local-only output differs from serial: %s", d)
	}
}

func TestRunAgainstHTTPBackends(t *testing.T) {
	want := serialJSONL(t)
	var urls []string
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{Workers: 2, QueueDepth: 8, SweepWorkers: 2})
		t.Cleanup(srv.Drain)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	var stdout, stderr bytes.Buffer
	code, err := run(context.Background(), writeSpec(t), strings.Join(urls, ","), testOpts(),
		"-", true, "work_total", true, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v, stderr %s", code, err, stderr.Bytes())
	}
	out := stdout.Bytes()
	if !bytes.HasPrefix(out, want) {
		t.Errorf("mesh JSONL differs from serial:\n got: %s\nwant: %s", out, want)
	}
	if !bytes.Contains(out, []byte(`sweep "mesh-test"`)) {
		t.Errorf("summary missing from stdout: %s", out)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("dispatched=")) {
		t.Errorf("per-backend stats missing from stderr: %s", stderr.Bytes())
	}
}

// corruptingBackend mimics an hsfqd whose results are wrong: it executes
// jobs correctly but flips a digit in every outcome digest.
func corruptingBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Jobs []struct {
				ID     int              `json:"id"`
				Seed   uint64           `json:"seed"`
				Config simconfig.Config `json:"config"`
			} `json:"jobs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		type outcome struct {
			ID      int                `json:"id"`
			Key     string             `json:"key"`
			Seed    uint64             `json:"seed"`
			Digest  string             `json:"digest,omitempty"`
			Metrics map[string]float64 `json:"metrics,omitempty"`
			Error   string             `json:"error,omitempty"`
		}
		var resp struct {
			Results []outcome `json:"results"`
		}
		for _, j := range req.Jobs {
			res := sweep.RunJob(sweep.Job{ID: j.ID, Seed: j.Seed, Config: j.Config}, false)
			d := res.Digest
			if d != "" {
				if d[0] == '0' {
					d = "1" + d[1:]
				} else {
					d = "0" + d[1:]
				}
			}
			resp.Results = append(resp.Results, outcome{
				ID: j.ID, Key: sweep.JobKey(j.Config, j.Seed), Seed: j.Seed,
				Digest: d, Metrics: res.Metrics, Error: res.Error,
			})
		}
		json.NewEncoder(w).Encode(resp)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestCorruptBackendExitsMismatch(t *testing.T) {
	want := serialJSONL(t)
	ts := corruptingBackend(t)
	opt := testOpts()
	opt.VerifyFraction = 1
	var stdout, stderr bytes.Buffer
	code, err := run(context.Background(), writeSpec(t), ts.URL, opt,
		"-", false, "work_total", false, &stdout, &stderr)
	if code != exitMismatch {
		t.Fatalf("code = %d, want %d (err %v)", code, exitMismatch, err)
	}
	if err == nil || !strings.Contains(err.Error(), "digest verification") {
		t.Errorf("err = %v", err)
	}
	// Detection does not sacrifice the output: every corrupt result was
	// replaced by the local authority's, so the JSONL is still right.
	if d := testutil.DiffBytes(stdout.Bytes(), want); d != "" {
		t.Errorf("output not repaired: %s", d)
	}
}

func TestBadBackendURL(t *testing.T) {
	code, err := run(context.Background(), writeSpec(t), "::not a url::", testOpts(),
		"", false, "work_total", false, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || code != 2 {
		t.Fatalf("code %d, err %v; want usage error", code, err)
	}
}
