// Command tracesmoke is the end-to-end harness for the trace-streaming
// subsystem. It proves the subsystem's three contracts against a real
// hsfqd process over real HTTP:
//
//  1. Replay soundness: a follow stream consumed while the job runs must
//     hash to the same digest as the recorded wire-format trace fetched
//     afterwards — and decoding that recording with the tracestream
//     decoder must reproduce the digest a third time. Live stream,
//     stored frames, and decoded replay are the same trace.
//  2. Drop accounting: a deliberately slow subscriber on a minimum
//     buffer must be told exactly what it lost (rows received + dropped
//     == total rows), never backpressuring the run or the fast reader.
//  3. Diff parity: POST /v1/diff on a deliberately planted divergence
//     must return the same verdict, divergence_at_ns, and first
//     divergent row pair as batch `hsfqdiff -json` on the same configs.
//
// Usage:
//
//	tracesmoke -hsfqd /tmp/hsfqd -hsfqdiff /tmp/hsfqdiff
//
// Exit status 0 when all three legs hold, 1 otherwise.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"hsfq/internal/simconfig"
	"hsfq/internal/sweep"
	"hsfq/internal/tracediff"
	"hsfq/internal/tracestream"
)

func main() {
	var (
		hsfqdBin = flag.String("hsfqd", "", "path to an hsfqd binary (required)")
		diffBin  = flag.String("hsfqdiff", "", "path to an hsfqdiff binary (required)")
	)
	flag.Parse()
	if *hsfqdBin == "" || *diffBin == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*hsfqdBin, *diffBin); err != nil {
		fmt.Fprintln(os.Stderr, "tracesmoke:", err)
		os.Exit(1)
	}
}

func run(hsfqdBin, diffBin string) error {
	dir, err := os.MkdirTemp("", "tracesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	addr, stop, err := spawn(hsfqdBin)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		stop()
		return err
	}
	if err := streamLeg(addr); err != nil {
		return fail(fmt.Errorf("stream leg: %w", err))
	}
	if err := diffLeg(addr, diffBin, dir); err != nil {
		return fail(fmt.Errorf("diff leg: %w", err))
	}
	if err := stop(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}

// spawn starts hsfqd with tracing on, on a free port, and returns the
// base URL plus a stop function that SIGTERMs and requires exit 0.
func spawn(binary string) (string, func() error, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	addr := fmt.Sprintf("http://127.0.0.1:%d", port)

	daemon := exec.Command(binary,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "2", "-queue", "16",
		"-trace-bytes", fmt.Sprint(64<<20))
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return "", nil, fmt.Errorf("spawning %s: %w", binary, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			daemon.Process.Kill()
			return "", nil, fmt.Errorf("daemon at %s not ready within 5s", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop := func() error {
		if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		exited := make(chan error, 1)
		go func() { exited <- daemon.Wait() }()
		select {
		case err := <-exited:
			if err != nil {
				return fmt.Errorf("daemon did not drain cleanly: %w", err)
			}
		case <-time.After(10 * time.Second):
			daemon.Process.Kill()
			return fmt.Errorf("daemon did not exit within 10s of SIGTERM")
		}
		return nil
	}
	return addr, stop, nil
}

// traceConfig is the streamed job: a fine quantum over a long horizon
// makes the stream a few hundred thousand events, so readers attach
// while it is live and the throttled one falls behind for real.
const traceConfig = `{
  "rate_mips": 100,
  "horizon": "150s",
  "seed": 424242,
  "nodes": [
    {"path": "/soft", "weight": 3, "leaf": "sfq", "quantum": "1ms"},
    {"path": "/be", "weight": 1, "leaf": "rr"}
  ],
  "threads": [
    {"name": "dec", "leaf": "/soft", "weight": 2, "program": {"kind": "mpeg", "loop": true}},
    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
  ]
}`

// streamLeg runs legs 1 and 2: one traced job, one fast follow stream
// and one throttled one attached while it runs, then the recorded trace
// fetched raw and re-decoded.
func streamLeg(addr string) error {
	cfg, err := simconfig.Parse(strings.NewReader(traceConfig))
	if err != nil {
		return err
	}
	// The job's content address, computed client-side so the follow
	// streams can start attaching before the submission returns.
	key := sweep.JobKey(cfg, cfg.Seed)

	postErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(addr+"/v1/simulate", "application/json",
			strings.NewReader(traceConfig))
		if err != nil {
			postErr <- err
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("simulate: status %d: %s", resp.StatusCode, b)
		}
		postErr <- err
	}()

	var fast, slow streamResult
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// A buffer big enough to absorb the whole run even if delivery
		// momentarily stalls: lossless is the point of this reader.
		fast = followStream(addr, key, 64<<20, false)
	}()
	go func() {
		defer wg.Done()
		// Minimum server-side buffer plus a throttled client: guaranteed
		// to fall behind a stream this long.
		slow = followStream(addr, key, 4096, true)
	}()
	wg.Wait()
	if err := <-postErr; err != nil {
		return err
	}

	if fast.err != nil {
		return fmt.Errorf("fast stream: %w", fast.err)
	}
	if !fast.sawEnd || fast.dropped != 0 {
		return fmt.Errorf("fast stream: end=%v dropped=%d; want a complete gap-free stream", fast.sawEnd, fast.dropped)
	}
	if fast.digest != fast.endDigest || fast.rows != fast.endRows {
		return fmt.Errorf("fast stream: hashed %d rows to %s, stream announced %d rows %s",
			fast.rows, fast.digest, fast.endRows, fast.endDigest)
	}
	if slow.err != nil {
		return fmt.Errorf("slow stream: %w", slow.err)
	}
	if !slow.sawEnd || slow.dropped == 0 {
		return fmt.Errorf("slow stream: end=%v dropped=%d; want drop accounting, not backpressure", slow.sawEnd, slow.dropped)
	}
	if slow.rows+int(slow.dropped) != slow.endRows {
		return fmt.Errorf("slow stream accounting: %d received + %d dropped != %d total",
			slow.rows, slow.dropped, slow.endRows)
	}
	fmt.Printf("tracesmoke: fast follow gap-free (%d rows), slow follow told about %d dropped (accounting exact)\n",
		fast.rows, slow.dropped)

	// Replay soundness: the stored recording, fetched raw and re-decoded
	// through the wire codec, must reproduce the live stream's digest.
	resp, err := http.Get(addr + "/v1/trace/" + key)
	if err != nil {
		return err
	}
	frames, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("raw trace: status %d: %s", resp.StatusCode, frames)
	}
	if got := resp.Header.Get("X-Trace-Digest"); got != fast.digest {
		return fmt.Errorf("recording digest %s != live stream digest %s", got, fast.digest)
	}
	dec := tracestream.NewDecoder()
	dec.Feed(frames)
	rd := tracestream.NewRowDigest(1)
	var endDigest string
	for {
		f, err := dec.Next()
		if err != nil {
			return fmt.Errorf("decoding recording: %w", err)
		}
		if f == nil {
			break
		}
		switch f.Type {
		case tracestream.FrameHeader:
			rd = tracestream.NewRowDigest(f.NumCores)
		case tracestream.FrameEvent:
			rd.Add(f.Event)
		case tracestream.FrameEnd:
			endDigest = f.Digest
		}
	}
	if rd.Sum() != fast.digest || endDigest != fast.digest || rd.Rows() != fast.rows {
		return fmt.Errorf("decoded recording: %d rows digest %s (end frame %s) != live stream %d rows %s",
			rd.Rows(), rd.Sum(), endDigest, fast.rows, fast.digest)
	}
	fmt.Printf("tracesmoke: replay sound: live stream, recording header, and decoded frames all hash to %s over %d rows\n",
		fast.digest, fast.rows)
	return nil
}

// streamResult is what one follow stream observed.
type streamResult struct {
	rows      int
	digest    string // sha256 over received rows, hasher-style
	endDigest string
	endRows   int
	dropped   uint64
	sawEnd    bool
	err       error
}

// followStream attaches to the job's follow stream (retrying until the
// trace exists) and consumes it to the end. slow throttles reads so the
// server-side buffer overflows.
func followStream(addr, key string, bufBytes int, slow bool) streamResult {
	url := fmt.Sprintf("%s/v1/trace/%s?follow=1&buf=%d", addr, key, bufBytes)
	var resp *http.Response
	deadline := time.Now().Add(15 * time.Second)
	for {
		r, err := http.Get(url)
		if err != nil {
			return streamResult{err: err}
		}
		if r.StatusCode == http.StatusOK {
			resp = r
			break
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			return streamResult{err: fmt.Errorf("follow: status %d", r.StatusCode)}
		}
		if time.Now().After(deadline) {
			return streamResult{err: fmt.Errorf("trace for %s never appeared", key)}
		}
		time.Sleep(time.Millisecond)
	}
	defer resp.Body.Close()

	var body io.Reader = resp.Body
	if slow {
		body = &throttledReader{r: resp.Body, chunk: 4096, pause: 5 * time.Millisecond}
	}

	var res streamResult
	sum := sha256.New()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			event = name
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // blank separators, keepalive comments
		}
		switch event {
		case "row":
			fmt.Fprintf(sum, "%s\n", data)
			res.rows++
		case "dropped":
			var d struct {
				Dropped uint64 `json:"dropped"`
			}
			if err := json.Unmarshal([]byte(data), &d); err == nil {
				res.dropped += d.Dropped
			}
		case "end":
			var e struct {
				Rows   int    `json:"rows"`
				Digest string `json:"digest"`
			}
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				res.err = err
				return res
			}
			res.sawEnd, res.endRows, res.endDigest = true, e.Rows, e.Digest
		}
	}
	res.err = sc.Err()
	res.digest = fmt.Sprintf("%x", sum.Sum(nil))
	return res
}

// throttledReader caps read throughput: small chunks with pauses, so the
// server's per-subscriber buffer overflows and drop accounting engages.
type throttledReader struct {
	r     io.Reader
	chunk int
	pause time.Duration
}

func (t *throttledReader) Read(p []byte) (int, error) {
	if len(p) > t.chunk {
		p = p[:t.chunk]
	}
	n, err := t.r.Read(p)
	time.Sleep(t.pause)
	return n, err
}

// diffConfig is the diff leg's base scenario; the %d is the /soft
// weight, so the planted side is a one-integer change with a divergence
// that appears as soon as the weight ratio decides a dispatch.
const diffConfig = `{
  "rate_mips": 100,
  "horizon": "2s",
  "seed": 9,
  "nodes": [
    {"path": "/soft", "weight": %d, "leaf": "sfq", "quantum": "5ms"},
    {"path": "/be", "weight": 1, "leaf": "rr"}
  ],
  "threads": [
    {"name": "dec", "leaf": "/soft", "weight": 2, "program": {"kind": "mpeg", "loop": true}},
    {"name": "hog", "leaf": "/be", "program": {"kind": "loop"}}
  ]
}`

const diffGrid = 8

// diffLeg plants a divergence (a weight change) and requires the served
// POST /v1/diff verdict to match batch `hsfqdiff -json` exactly: same
// status, same divergence_at_ns, same first divergent row pair.
func diffLeg(addr, diffBin, dir string) error {
	base := fmt.Sprintf(diffConfig, 3)
	planted := fmt.Sprintf(diffConfig, 4)
	basePath := filepath.Join(dir, "base.json")
	plantedPath := filepath.Join(dir, "planted.json")
	if err := os.WriteFile(basePath, []byte(base), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(plantedPath, []byte(planted), 0o644); err != nil {
		return err
	}

	cmd := exec.Command(diffBin, "-a", basePath, "-b", plantedPath,
		"-grid", fmt.Sprint(diffGrid), "-json")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		return fmt.Errorf("batch hsfqdiff: err %v, want exit status 3\n%s%s", err, stdout.Bytes(), stderr.Bytes())
	}
	var batch tracediff.Result
	if err := json.Unmarshal(stdout.Bytes(), &batch); err != nil {
		return fmt.Errorf("batch hsfqdiff JSON: %w\n%s", err, stdout.Bytes())
	}
	if !batch.Divergent() || batch.DivergenceAtNs == 0 {
		return fmt.Errorf("batch hsfqdiff did not localize the planted divergence: %+v", batch)
	}

	body := fmt.Sprintf(`{"a":{"config":%s},"b":{"config":%s},"grid":%d}`, base, planted, diffGrid)
	resp, err := http.Post(addr+"/v1/diff", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/diff: status %d: %s", resp.StatusCode, b)
	}
	var served tracediff.Result
	if err := json.Unmarshal(b, &served); err != nil {
		return fmt.Errorf("POST /v1/diff JSON: %w\n%s", err, b)
	}

	if served.Status != batch.Status || served.DivergenceAtNs != batch.DivergenceAtNs {
		return fmt.Errorf("served diff (%s at %dns) != batch hsfqdiff (%s at %dns)",
			served.Status, served.DivergenceAtNs, batch.Status, batch.DivergenceAtNs)
	}
	if served.FirstRows == nil || batch.FirstRows == nil || *served.FirstRows != *batch.FirstRows {
		return fmt.Errorf("served first rows %+v != batch first rows %+v", served.FirstRows, batch.FirstRows)
	}
	fmt.Printf("tracesmoke: diff parity: served and batch verdicts agree (%s at %dns)\n",
		served.Status, served.DivergenceAtNs)
	return nil
}
