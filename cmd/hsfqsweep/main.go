// Command hsfqsweep runs a parameter sweep: a grid of deterministic
// simulations expanded from a JSON spec (a base simconfig scenario plus
// axes over weights, quanta, leaf kinds, interrupt load, MIPS, and seed
// replications), executed across a bounded pool of workers.
//
// Usage:
//
//	hsfqsweep -spec sweep.json                       # JSONL results + summary
//	hsfqsweep -spec sweep.json -workers 8 -o out.jsonl
//	hsfqsweep -spec sweep.json -verify               # every job twice; digests must match
//	hsfqsweep -spec sweep.json -metrics work_total,share:dec
//	hsfqsweep -spec sweep.json -checkpoint-dir ck/   # resume longer horizons from stored prefixes
//
// Per-job results stream as JSON lines in job order; the bytes are
// identical for any -workers value. The summary table aggregates each grid
// point's metrics across its seed replications (mean/p50/p99).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"hsfq/internal/metrics"
	"hsfq/internal/sched"
	"hsfq/internal/sweep"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "JSON sweep specification (required)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
		verify      = flag.Bool("verify", false, "run every job twice and fail on any digest mismatch")
		outPath     = flag.String("o", "-", `JSON-lines results: "-" for stdout, "" for none, else a file`)
		summary     = flag.Bool("summary", true, "print the per-point aggregate table")
		metricNames = flag.String("metrics", "work_total", "comma-separated metrics to summarize")
		ckptDir     = flag.String("checkpoint-dir", "", "checkpoint store: resume jobs from stored run prefixes (horizon extension) and store final states for future sweeps")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), `usage: hsfqsweep -spec sweep.json [flags]

axis params: %s %s %s %s %s %s %s %s %s
leaf kinds:  %s

flags:
`,
			sweep.ParamMIPS, sweep.ParamHorizon, sweep.ParamLeaf, sweep.ParamQuantum,
			sweep.ParamWeight, sweep.ParamThreadWeight, sweep.ParamInterruptPeriod,
			sweep.ParamInterruptService, sweep.ParamInterruptRate,
			strings.Join(sched.Names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	rep, err := run(*specPath, *workers, *verify, *outPath, *summary, *metricNames, *ckptDir, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsfqsweep:", err)
		if line := mismatchSummary(rep); line != "" {
			fmt.Fprintln(os.Stderr, "hsfqsweep:", line)
		}
		os.Exit(exitCode(rep))
	}
	if rep.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "hsfqsweep: resumed %d of %d job(s) from checkpoints\n", rep.Resumed, rep.Jobs)
	}
}

// exitMismatch distinguishes -verify digest mismatches (the simulator
// broke its determinism contract) from ordinary failures (exit 1), so CI
// can tell "scenario is wrong" from "reproduction is wrong".
const exitMismatch = 3

// exitCode maps a failed run's report to its exit status.
func exitCode(rep *sweep.Report) int {
	if rep != nil && rep.Mismatched > 0 {
		return exitMismatch
	}
	return 1
}

// mismatchSummary is the one-line stderr summary of -verify digest
// mismatches; empty when there are none.
func mismatchSummary(rep *sweep.Report) string {
	if rep == nil || rep.Mismatched == 0 {
		return ""
	}
	first := ""
	for _, r := range rep.Results {
		if r.Mismatch {
			first = fmt.Sprintf(" (first: job %d, %s)", r.ID, r.Error)
			break
		}
	}
	return fmt.Sprintf("verify: %d of %d job(s) nondeterministic%s", rep.Mismatched, rep.Jobs, first)
}

func run(specPath string, workers int, verify bool, outPath string, summary bool, metricNames, ckptDir string, stdout io.Writer) (*sweep.Report, error) {
	f, err := os.Open(specPath)
	if err != nil {
		return nil, err
	}
	spec, err := sweep.ParseSpec(f)
	f.Close()
	if err != nil {
		return nil, err
	}

	var stream io.Writer
	switch outPath {
	case "":
	case "-":
		stream = stdout
	default:
		out, err := os.Create(outPath)
		if err != nil {
			return nil, err
		}
		defer out.Close()
		stream = out
	}

	rep, err := sweep.Run(spec, sweep.Options{Workers: workers, Verify: verify, Stream: stream, CheckpointDir: ckptDir})
	if err != nil {
		return rep, err
	}
	if summary {
		printSummary(stdout, rep, strings.Split(metricNames, ","))
	}
	return rep, nil
}

func printSummary(w io.Writer, rep *sweep.Report, names []string) {
	fmt.Fprintf(w, "sweep %q: %d job(s) on %d worker(s), %d grid point(s)\n",
		rep.Name, rep.Jobs, rep.Workers, len(rep.Aggregates))
	tbl := metrics.NewTable("point", "seeds", "metric", "mean", "p50", "p99", "min", "max")
	for _, agg := range rep.Aggregates {
		for _, name := range names {
			name = strings.TrimSpace(name)
			s, ok := agg.Metrics[name]
			if !ok {
				continue
			}
			tbl.AddRow(pointLabel(agg.Point), agg.Seeds, name, s.Mean, s.P50, s.P99, s.Min, s.Max)
		}
	}
	fmt.Fprint(w, tbl.String())
}

// pointLabel renders a grid point compactly: "leaf@/soft=sfq quantum@/soft=5ms".
func pointLabel(point map[string]string) string {
	if len(point) == 0 {
		return "(base)"
	}
	keys := make([]string, 0, len(point))
	for k := range point {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + point[k]
	}
	return strings.Join(parts, " ")
}
