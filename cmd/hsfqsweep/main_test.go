package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSpec = `{
  "name": "smoke",
  "seeds": 2,
  "base": {
    "horizon": "200ms",
    "seed": 42,
    "nodes": [
      {"path": "/a", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
      {"path": "/b", "weight": 1, "leaf": "rr"}
    ],
    "threads": [
      {"name": "x", "leaf": "/a", "program": {"kind": "loop"}},
      {"name": "y", "leaf": "/b", "program": {"kind": "loop"}}
    ]
  },
  "axes": [
    {"param": "weight", "target": "/a", "values": [1, 3]}
  ]
}`

func TestRunSweep(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.jsonl")

	var stdout strings.Builder
	if err := run(specPath, 4, true, outPath, true, "work_total,share:x", &stdout); err != nil {
		t.Fatal(err)
	}
	jsonl, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(jsonl)), "\n")
	if len(lines) != 4 { // 2 weights x 2 seeds
		t.Fatalf("got %d JSONL lines, want 4:\n%s", len(lines), jsonl)
	}
	for _, line := range lines {
		if !strings.Contains(line, `"digest":"`) {
			t.Errorf("line without digest: %s", line)
		}
	}
	out := stdout.String()
	for _, want := range []string{"4 job(s)", "2 grid point(s)", "work_total", "share:x", "weight@/a=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// A second run with a different worker count streams identical bytes.
	outPath2 := filepath.Join(dir, "out2.jsonl")
	if err := run(specPath, 1, false, outPath2, false, "work_total", &stdout); err != nil {
		t.Fatal(err)
	}
	jsonl2, err := os.ReadFile(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	if string(jsonl) != string(jsonl2) {
		t.Error("JSONL output differs between -workers 4 and -workers 1")
	}
}

func TestRunSweepBadSpec(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout strings.Builder
	if err := run(specPath, 1, false, "", false, "", &stdout); err == nil {
		t.Error("empty base accepted")
	}
}
