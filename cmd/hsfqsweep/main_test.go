package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hsfq/internal/sweep"
)

const testSpec = `{
  "name": "smoke",
  "seeds": 2,
  "base": {
    "horizon": "200ms",
    "seed": 42,
    "nodes": [
      {"path": "/a", "weight": 3, "leaf": "sfq", "quantum": "10ms"},
      {"path": "/b", "weight": 1, "leaf": "rr"}
    ],
    "threads": [
      {"name": "x", "leaf": "/a", "program": {"kind": "loop"}},
      {"name": "y", "leaf": "/b", "program": {"kind": "loop"}}
    ]
  },
  "axes": [
    {"param": "weight", "target": "/a", "values": [1, 3]}
  ]
}`

func TestRunSweep(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.jsonl")

	var stdout strings.Builder
	rep, err := run(specPath, 4, true, outPath, true, "work_total,share:x", "", &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Mismatched != 0 {
		t.Fatalf("report: %+v", rep)
	}
	jsonl, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(jsonl)), "\n")
	if len(lines) != 4 { // 2 weights x 2 seeds
		t.Fatalf("got %d JSONL lines, want 4:\n%s", len(lines), jsonl)
	}
	for _, line := range lines {
		if !strings.Contains(line, `"digest":"`) {
			t.Errorf("line without digest: %s", line)
		}
	}
	out := stdout.String()
	for _, want := range []string{"4 job(s)", "2 grid point(s)", "work_total", "share:x", "weight@/a=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// A second run with a different worker count streams identical bytes.
	outPath2 := filepath.Join(dir, "out2.jsonl")
	if _, err := run(specPath, 1, false, outPath2, false, "work_total", "", &stdout); err != nil {
		t.Fatal(err)
	}
	jsonl2, err := os.ReadFile(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	if string(jsonl) != string(jsonl2) {
		t.Error("JSONL output differs between -workers 4 and -workers 1")
	}
}

func TestRunSweepBadSpec(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout strings.Builder
	if _, err := run(specPath, 1, false, "", false, "", "", &stdout); err == nil {
		t.Error("empty base accepted")
	}
}

// TestVerifyMismatchExit covers the -verify failure path: a report with
// digest mismatches must select the distinct exit code and produce the
// one-line stderr summary naming the first offender.
func TestVerifyMismatchExit(t *testing.T) {
	rep := &sweep.Report{
		Jobs:       4,
		Failed:     2,
		Mismatched: 2,
		Results: []sweep.JobResult{
			{ID: 0},
			{ID: 1, Error: "nondeterministic: digest aaa then bbb", Mismatch: true},
			{ID: 2, Error: "nondeterministic: digest ccc then ddd", Mismatch: true},
			{ID: 3},
		},
	}
	if got := exitCode(rep); got != exitMismatch {
		t.Errorf("exit code %d, want %d", got, exitMismatch)
	}
	line := mismatchSummary(rep)
	if !strings.Contains(line, "2 of 4 job(s) nondeterministic") || !strings.Contains(line, "job 1") {
		t.Errorf("summary %q", line)
	}
	if strings.Contains(line, "\n") {
		t.Errorf("summary is not one line: %q", line)
	}

	// Ordinary failures (or no report at all) stay exit 1, no summary.
	plain := &sweep.Report{Jobs: 2, Failed: 1, Results: []sweep.JobResult{{ID: 0, Error: "boom"}, {ID: 1}}}
	if got := exitCode(plain); got != 1 {
		t.Errorf("plain failure exit %d", got)
	}
	if mismatchSummary(plain) != "" || mismatchSummary(nil) != "" {
		t.Error("summary printed without mismatches")
	}
	if exitCode(nil) != 1 {
		t.Error("nil report exit code")
	}
}
